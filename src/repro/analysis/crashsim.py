"""The crash-consistency campaign: enumerate crash points, prove recovery.

ALICE/CrashMonkey transplanted onto the run-registry storage tier.  The
campaign runs one small instrumented sweep (journal + snapshot +
manifest + progress stream + supervisor spans + registry record, all
through one :class:`repro.fsio.FaultyIO` backend), counts every
syscall-shaped operation, then re-runs it once per enumerated fault:

- **crash points** — the run is killed (``SimulatedCrash``) at
  operation *k*; the backend then reshapes the disk into a state the
  dead process could have left (torn unsynced tails, rolled-back
  renames, leaked ``*.tmp`` files);
- **errno points** — operation *k* fails with ``ENOSPC`` or ``EIO``
  (writes first land a seeded short prefix); the run either survives
  (best-effort writers must *count* the drop — silent loss fails the
  point) or aborts like any I/O-failed process;
- **fsync-lie points** — a handful of crash points re-run with an
  fsync that reports success without persisting, the volatile
  write-cache lie, which widens every loss window.

Each damaged state must then satisfy the durability contract
(DESIGN §5i): ``repro fsck`` finds it clean or ``--repair`` makes it
clean, a ``--resume`` completes the sweep, and the resumed merged
metrics are **bit-identical** to the uninterrupted serial baseline.
Any deviation fails the point and emits a minimized crash trace (the
op log tail, the fsck findings, the metric diff) for the CI artifact.

Scale note: the probe cells are tiny closed-form functions
(:func:`probe_cell`), not real characterizations — the campaign
stresses the *storage* tier, and a cheap cell lets CI enumerate dozens
of crash points in seconds.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.exec.cells import decompose
from repro.exec.checkpoint import SweepCheckpoint, sweep_id
from repro.exec.merge import merge_results
from repro.exec.supervisor import SweepExecutor
from repro.exec.tracing import SweepTracer
from repro.fsio import DEFAULT_FAULT_ERRNOS, FaultyIO, SimulatedCrash
from repro.obs.fsck import fsck_repair, fsck_scan
from repro.obs.registry import (
    RunRecord,
    RunRegistry,
    build_provenance,
    config_hash,
)
from repro.obs.stream import ProgressStream

#: Dotted path of the campaign's cheap deterministic cell callable.
PROBE_CELL_FN = "repro.analysis.crashsim.probe_cell"

#: The default probe matrix: 3 workloads x 1 platform x 2 seeds.
PROBE_WORKLOADS = ("wordcount", "grep", "sort")
PROBE_PLATFORMS = ("e5645",)
PROBE_SEEDS = 2

#: Snapshot cadence for campaign checkpoints — low, so snapshot
#: rewrites (the richest crash surface) happen inside a 6-cell sweep.
PROBE_SNAPSHOT_EVERY = 2

__all__ = [
    "PROBE_CELL_FN",
    "CampaignPoint",
    "CampaignResult",
    "probe_cell",
    "run_campaign",
]


def probe_cell(spec: dict) -> dict:
    """A closed-form deterministic cell: pure function of its spec."""
    return {
        "metrics": {
            "value": float(spec["seed"]) * 10.0 + float(len(spec["workload"])),
            "scale": float(spec["scale"]),
        }
    }


@dataclass
class CampaignPoint:
    """One enumerated fault and how its recovery went."""

    kind: str  # "crash" | "errno" | "fsync-lie"
    op: int
    detail: str  # which op / errno was hit
    status: str  # "recovered" | "clean" | "survived" | "failed"
    fsck_errors: int = 0
    repaired: int = 0
    drift: int = 0
    #: Populated only on failure: the minimized reproduction trace.
    crash_trace: Optional[dict] = None

    def to_dict(self) -> dict:
        data = {
            "kind": self.kind,
            "op": self.op,
            "detail": self.detail,
            "status": self.status,
            "fsck_errors": self.fsck_errors,
            "repaired": self.repaired,
            "drift": self.drift,
        }
        if self.crash_trace is not None:
            data["crash_trace"] = self.crash_trace
        return data


@dataclass
class CampaignResult:
    """The campaign verdict: every point must have recovered."""

    seed: int
    n_ops: int
    points: List[CampaignPoint] = field(default_factory=list)
    silent_loss: int = 0  # errno points where drops went uncounted

    @property
    def failures(self) -> List[CampaignPoint]:
        return [p for p in self.points if p.status == "failed"]

    @property
    def ok(self) -> bool:
        return not self.failures and self.silent_loss == 0

    def fidelity_metrics(self) -> Dict[str, float]:
        return {
            "crashsim.ops": float(self.n_ops),
            "crashsim.points": float(len(self.points)),
            "crashsim.failed": float(len(self.failures)),
            "crashsim.repaired": float(
                sum(p.repaired for p in self.points)
            ),
            "crashsim.silent_loss": float(self.silent_loss),
        }

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ops": self.n_ops,
            "ok": self.ok,
            "silent_loss": self.silent_loss,
            "points": [p.to_dict() for p in self.points],
        }

    def render(self) -> str:
        by_status: Dict[str, int] = {}
        for point in self.points:
            by_status[point.status] = by_status.get(point.status, 0) + 1
        lines = [
            f"crash-consistency campaign: {self.n_ops} op(s) in the "
            f"instrumented sweep, {len(self.points)} fault point(s)"
        ]
        for status in sorted(by_status):
            lines.append(f"  {status}: {by_status[status]}")
        for point in self.failures:
            lines.append(
                f"  FAILED {point.kind}@op{point.op} ({point.detail}): "
                f"{point.fsck_errors} unrepaired error(s), "
                f"{point.drift} drifted metric(s)"
            )
        if self.silent_loss:
            lines.append(
                f"  SILENT LOSS: {self.silent_loss} errno point(s) "
                f"dropped writer data without counting it"
            )
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The instrumented sweep
# ---------------------------------------------------------------------------

def _probe_cells(scale: float, seed: int):
    return decompose(
        list(PROBE_WORKLOADS), list(PROBE_PLATFORMS), scale,
        list(range(seed, seed + PROBE_SEEDS)), fn=PROBE_CELL_FN,
    )


def _probe_config(scale: float, seed: int) -> dict:
    return {
        "workloads": list(PROBE_WORKLOADS),
        "platforms": list(PROBE_PLATFORMS),
        "scale": scale,
        "seeds": list(range(seed, seed + PROBE_SEEDS)),
    }


def _run_instrumented(runs_dir: str, *, scale: float, seed: int,
                      jobs: int, io=None, resume: bool = False) -> dict:
    """One full sweep through the storage tier under ``io``.

    Exercises every writer fsck must understand: checkpoint manifest /
    journal / snapshot / lock, progress stream, supervisor span file,
    merged trace and a registry record.  Returns the merged metrics
    plus the observability drop counters.
    """
    cells = _probe_cells(scale, seed)
    config = _probe_config(scale, seed)
    chash = config_hash(config)
    key = sweep_id("crashsim", chash, seed)
    checkpoint = SweepCheckpoint(
        runs_dir, key, snapshot_every=PROBE_SNAPSHOT_EVERY, io=io,
    )
    checkpoint.initialise(
        config_hash=chash, seed=seed, config=config, n_cells=len(cells),
    )
    tracer = SweepTracer(os.path.join(checkpoint.dir, "trace"), io=io)
    stream = ProgressStream(
        os.path.join(checkpoint.dir, "progress.jsonl"), sweep=key, io=io,
    )
    executor = SweepExecutor(jobs=jobs, tracer=tracer, observer=stream)
    try:
        outcome = executor.run(cells, checkpoint=checkpoint, resume=resume)
    finally:
        stream.close()
        tracer.close()
    merged = merge_results(cells, outcome.results)
    registry = RunRegistry(runs_dir, io=io)
    registry.save(RunRecord(
        experiment="crashsim-probe",
        kind="sweep",
        metrics=merged,
        provenance=build_provenance(
            experiment="crashsim-probe", seed=seed, scale=scale,
            platforms=list(PROBE_PLATFORMS), config=config,
        ),
        timings={f"exec.{k}": v for k, v in outcome.telemetry.items()},
    ))
    counters = dict(stream.telemetry())
    counters.update(tracer.telemetry())
    return {"merged": merged, "counters": counters}


def _diff_metrics(baseline: Dict[str, float],
                  candidate: Dict[str, float]) -> List[str]:
    """Keys that differ bit-for-bit between two merged metric maps."""
    drifted = []
    for key in sorted(set(baseline) | set(candidate)):
        if baseline.get(key) != candidate.get(key):
            drifted.append(key)
    return drifted


def _fresh_dir(base: str, label: str) -> str:
    path = os.path.join(base, label)
    if os.path.isdir(path):
        shutil.rmtree(path)
    os.makedirs(path)
    return path


def _sample_points(n_ops: int, max_points: int) -> List[int]:
    """Deterministic crash-point sample: all ops, or an even stride
    that always includes the first and last operation."""
    if n_ops <= 0 or max_points <= 0:
        return []
    if max_points == 1:
        return [n_ops - 1]
    if n_ops <= max_points:
        return list(range(n_ops))
    points = sorted({
        round(i * (n_ops - 1) / (max_points - 1))
        for i in range(max_points)
    })
    return points


def _recover_and_verify(point: CampaignPoint, runs_dir: str, io: FaultyIO,
                        baseline: Dict[str, float], *, scale: float,
                        seed: int, jobs: int) -> None:
    """fsck (+repair) the damaged dir, resume, require bit-identity."""
    findings_dump: List[dict] = []
    try:
        scan = fsck_scan(runs_dir)
        point.fsck_errors = len(scan.errors)
        findings_dump = [f.to_dict() for f in scan.findings]
        if not scan.clean:
            fsck_repair(scan)
            point.repaired = sum(1 for f in scan.findings if f.repaired)
            rescan = fsck_scan(runs_dir)
            if not rescan.clean:
                point.status = "failed"
                point.crash_trace = _crash_trace(
                    point, io, findings_dump,
                    unrepaired=[f.to_dict() for f in rescan.errors],
                )
                return
        resumed = _run_instrumented(
            runs_dir, scale=scale, seed=seed, jobs=jobs, io=None,
            resume=True,
        )
        drifted = _diff_metrics(baseline, resumed["merged"])
        point.drift = len(drifted)
        if drifted:
            point.status = "failed"
            point.crash_trace = _crash_trace(
                point, io, findings_dump, drifted=drifted[:10],
            )
            return
        final = fsck_scan(runs_dir)
        if final.errors:
            point.status = "failed"
            point.crash_trace = _crash_trace(
                point, io, findings_dump,
                unrepaired=[f.to_dict() for f in final.errors],
            )
            return
    except SimulationError as error:
        point.status = "failed"
        point.crash_trace = _crash_trace(
            point, io, findings_dump, error=f"{type(error).__name__}: {error}",
        )
        return
    point.status = "recovered" if point.fsck_errors else "clean"


def _crash_trace(point: CampaignPoint, io: FaultyIO,
                 findings: List[dict], **extra) -> dict:
    """The minimized reproduction artifact for one failed point."""
    trace = {
        "kind": point.kind,
        "op": point.op,
        "detail": point.detail,
        "op_log_tail": io.op_log_tail(upto=point.op),
        "fsck_findings": findings,
    }
    trace.update(extra)
    return trace


def run_campaign(work_dir: str, *, seed: int = 0, scale: float = 0.2,
                 jobs: int = 2, max_points: int = 24,
                 errno_points: int = 6, fsync_lie_points: int = 4,
                 artifact_dir: Optional[str] = None) -> CampaignResult:
    """Enumerate crash/errno/fsync-lie points over the probe sweep.

    ``work_dir`` holds one scratch runs-directory per point (recreated
    each time); failing points additionally write their minimized
    crash trace under ``artifact_dir`` as
    ``crashsim-<kind>-op<k>.json``.
    """
    os.makedirs(work_dir, exist_ok=True)

    # 1. The uninterrupted serial baseline: the bit-identity oracle.
    baseline_dir = _fresh_dir(work_dir, "baseline")
    baseline = _run_instrumented(
        baseline_dir, scale=scale, seed=seed, jobs=1, io=None,
    )["merged"]

    # 2. The count run: a fault-free FaultyIO enumerates the op space
    #    and proves the backend itself is transparent.
    count_dir = _fresh_dir(work_dir, "count")
    count_io = FaultyIO(seed=seed)
    counted = _run_instrumented(
        count_dir, scale=scale, seed=seed, jobs=jobs, io=count_io,
    )["merged"]
    transparent = not _diff_metrics(baseline, counted)
    result = CampaignResult(seed=seed, n_ops=count_io.op_count)
    if not transparent:
        point = CampaignPoint(
            kind="crash", op=-1, detail="fault-free backend run",
            status="failed",
        )
        point.crash_trace = _crash_trace(
            point, count_io, [],
            drifted=_diff_metrics(baseline, counted)[:10],
        )
        result.points.append(point)
        _dump_artifacts(result, artifact_dir)
        return result

    # 3. Crash points (plus a few with a lying fsync).
    crash_points = _sample_points(count_io.op_count, max_points)
    lie_points = set(_sample_points(count_io.op_count, fsync_lie_points))
    for k in crash_points:
        for lies in ((False, True) if k in lie_points else (False,)):
            kind = "fsync-lie" if lies else "crash"
            point_dir = _fresh_dir(work_dir, "point")
            io = FaultyIO(seed=seed + k, crash_at=k, fsync_lies=lies)
            point = CampaignPoint(kind=kind, op=k, detail=f"crash at op {k}",
                                  status="pending")
            try:
                _run_instrumented(
                    point_dir, scale=scale, seed=seed, jobs=jobs, io=io,
                )
                # Fewer ops than the count run reached this index (the
                # jobs-2 schedule interleaves differently): nothing to
                # crash, the run simply completed.
                point.status = "survived"
            except SimulatedCrash as crash:
                point.detail = f"crash at op {k} ({crash.op} {crash.path})"
                io.apply_crash()
                _recover_and_verify(
                    point, point_dir, io, baseline,
                    scale=scale, seed=seed, jobs=jobs,
                )
            result.points.append(point)
            if point.status == "failed":
                _dump_point(point, artifact_dir)

    # 4. Errno injection: ENOSPC / EIO at sampled ops.
    errno_ops = _sample_points(count_io.op_count, errno_points)
    for index, k in enumerate(errno_ops):
        code = DEFAULT_FAULT_ERRNOS[index % len(DEFAULT_FAULT_ERRNOS)]
        point_dir = _fresh_dir(work_dir, "point")
        io = FaultyIO(seed=seed + k, errors={k: code})
        point = CampaignPoint(
            kind="errno", op=k, detail=f"errno {code} at op {k}",
            status="pending",
        )
        try:
            run = _run_instrumented(
                point_dir, scale=scale, seed=seed, jobs=jobs, io=io,
            )
        except SimulationError as error:
            # The executor refused to trust the sweep — the durable
            # path failed loudly.  Same recovery contract as a crash.
            point.detail += f" -> {type(error).__name__}"
            _recover_and_verify(
                point, point_dir, io, baseline,
                scale=scale, seed=seed, jobs=jobs,
            )
        except OSError as error:
            # A durable writer propagated the injected error (the
            # journal/manifest path must fail loudly, never swallow).
            point.detail += f" -> OSError errno {error.errno}"
            _recover_and_verify(
                point, point_dir, io, baseline,
                scale=scale, seed=seed, jobs=jobs,
            )
        else:
            # The run survived: the fault landed on a best-effort
            # writer.  The contract is *counted* degradation — if no
            # counter recorded an error, data was dropped silently.
            point.status = "survived"
            counters = run["counters"]
            errors_counted = (
                counters.get("stream_writer_errors", 0.0)
                + counters.get("trace_writer_errors", 0.0)
            )
            # Directory fsyncs are best-effort by contract: if one
            # fails and the process *survives*, every acknowledged
            # byte is still on disk (files are fsynced individually),
            # so a swallowed fsync-dir errno is not silent data loss.
            fault_was_exercised = any(
                entry[0] == k and entry[1] != "fsync-dir"
                for entry in io.log
            )
            if fault_was_exercised and errors_counted == 0:
                result.silent_loss += 1
                point.status = "failed"
                point.crash_trace = _crash_trace(
                    point, io, [],
                    error="injected errno produced no writer_errors count",
                )
            drifted = _diff_metrics(baseline, run["merged"])
            point.drift = len(drifted)
            if drifted:
                point.status = "failed"
                point.crash_trace = _crash_trace(
                    point, io, [], drifted=drifted[:10],
                )
        result.points.append(point)
        if point.status == "failed":
            _dump_point(point, artifact_dir)

    _dump_artifacts(result, artifact_dir)
    return result


def _dump_point(point: CampaignPoint, artifact_dir: Optional[str]) -> None:
    if artifact_dir is None or point.crash_trace is None:
        return
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(
        artifact_dir, f"crashsim-{point.kind}-op{point.op}.json"
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(point.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _dump_artifacts(result: CampaignResult,
                    artifact_dir: Optional[str]) -> None:
    if artifact_dir is None or result.ok:
        return
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(artifact_dir, "crashsim-campaign.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
