"""The WCRT facade: deploy profilers, gather, analyse, reduce.

Mirrors the tool architecture of §2.2: one profiler per cluster node,
each characterizing its share of the workload population, feeding a
dedicated analyzer.  The outcome is the §3 reduction result (77 → 17
with K = 17).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.analyzer import Analyzer
from repro.core.profiler import Profiler
from repro.core.subsetting import ReductionResult
from repro.uarch.platforms import XEON_E5645, Platform
from repro.workloads.base import WorkloadDefinition


class Wcrt:
    """The Workload Characterization and Reduction Tool."""

    def __init__(
        self,
        n_profilers: int = 5,
        platform: Platform = XEON_E5645,
        scale: float = 0.5,
    ):
        if n_profilers < 1:
            raise ValueError("need at least one profiler")
        self.platform = platform
        self.profilers = [
            Profiler(node=f"node{i}", platform=platform, scale=scale)
            for i in range(n_profilers)
        ]
        self.analyzer = Analyzer()

    def characterize(
        self, definitions: Sequence[WorkloadDefinition], seed: int = 0
    ) -> Analyzer:
        """Profile every workload (round-robin over profilers)."""
        for i, definition in enumerate(definitions):
            profiler = self.profilers[i % len(self.profilers)]
            record = profiler.profile(definition, seed=seed)
            self.analyzer.collect(record)
        return self.analyzer

    def reduce(
        self,
        definitions: Sequence[WorkloadDefinition],
        k: Optional[int] = 17,
        seed: int = 0,
    ) -> ReductionResult:
        """Characterize (if needed) and reduce the population."""
        already = set(self.analyzer.workload_ids)
        pending: List[WorkloadDefinition] = [
            d for d in definitions if d.workload_id not in already
        ]
        if pending:
            self.characterize(pending, seed=seed)
        return self.analyzer.reduce(k=k, seed=seed)
