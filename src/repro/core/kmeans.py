"""K-means clustering with k-means++ seeding and BIC model selection.

§3 of the paper: "Finally we use K-Means to cluster the 77 workloads,
and there are 17 clusters in the final results."  The companion work
(Jia et al., IISWC'14) selects K with the Bayesian Information
Criterion; :func:`choose_k_bic` reproduces that selection rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class KMeansModel:
    """A fitted clustering.

    Attributes:
        centroids: (k, d) cluster centres.
        labels: Cluster index per input row.
        inertia: Sum of squared distances to assigned centroids.
        n_iterations: Lloyd iterations until convergence.
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment for new points."""
        points = np.asarray(points, dtype=float)
        distances = _pairwise_sq(points, self.centroids)
        return distances.argmin(axis=1)


def _pairwise_sq(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, (n, k)."""
    return ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centres by D² sampling."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = ((points - centers[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 1e-18:
            # All remaining points coincide with a centre; pick randomly.
            centers[i] = points[int(rng.integers(n))]
            continue
        probs = closest_sq / total
        choice = int(rng.choice(n, p=probs))
        centers[i] = points[choice]
        closest_sq = np.minimum(
            closest_sq, ((points - centers[i]) ** 2).sum(axis=1)
        )
    return centers


def fit_kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    n_restarts: int = 8,
    max_iterations: int = 300,
    tolerance: float = 1e-8,
) -> KMeansModel:
    """Lloyd's algorithm with k-means++ restarts; returns the best fit."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    rng = np.random.default_rng(seed)
    best: Optional[KMeansModel] = None
    for _restart in range(max(1, n_restarts)):
        centers = _kmeans_pp_init(points, k, rng)
        labels = np.zeros(n, dtype=int)
        for iteration in range(1, max_iterations + 1):
            distances = _pairwise_sq(points, centers)
            labels = distances.argmin(axis=1)
            new_centers = centers.copy()
            for cluster in range(k):
                members = points[labels == cluster]
                if len(members):
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    farthest = distances.min(axis=1).argmax()
                    new_centers[cluster] = points[farthest]
            shift = float(((new_centers - centers) ** 2).sum())
            centers = new_centers
            if shift < tolerance:
                break
        inertia = float(
            _pairwise_sq(points, centers)[np.arange(n), labels].sum()
        )
        candidate = KMeansModel(
            centroids=centers, labels=labels, inertia=inertia,
            n_iterations=iteration,
        )
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    return best


def bic_score(points: np.ndarray, model: KMeansModel) -> float:
    """Bayesian Information Criterion of a clustering (x-means form).

    Higher is better.  Uses the spherical-Gaussian likelihood of
    Pelleg & Moore's x-means, the standard BIC for K-means model
    selection (and the criterion the BigDataBench subsetting work uses).
    """
    points = np.asarray(points, dtype=float)
    n, d = points.shape
    k = model.k
    if n <= k:
        return -math.inf
    variance = model.inertia / (d * (n - k))
    if variance <= 0:
        variance = 1e-12
    log_likelihood = 0.0
    for cluster in range(k):
        size = int((model.labels == cluster).sum())
        if size == 0:
            continue
        log_likelihood += (
            size * math.log(size / n)
            - size * d / 2.0 * math.log(2 * math.pi * variance)
            - (size - 1) * d / 2.0
        )
    n_parameters = k * (d + 1)
    return log_likelihood - n_parameters / 2.0 * math.log(n)


def choose_k_bic(
    points: np.ndarray,
    k_min: int = 2,
    k_max: int = 30,
    seed: int = 0,
) -> int:
    """Pick K by maximising the BIC over a range."""
    points = np.asarray(points, dtype=float)
    k_max = min(k_max, points.shape[0] - 1)
    if k_max < k_min:
        raise ValueError("k range is empty for this matrix")
    best_k, best_score = k_min, -math.inf
    for k in range(k_min, k_max + 1):
        model = fit_kmeans(points, k, seed=seed, n_restarts=4)
        score = bic_score(points, model)
        if score > best_score:
            best_k, best_score = k, score
    return best_k
