"""WCRT — the Workload Characterization and Reduction Tool (§2.2, §3).

The paper's primary contribution: per-node profilers collect the
45-metric characterization of every workload; the analyzer normalises
the metrics to a Gaussian distribution, reduces dimensionality with
principal component analysis, clusters with K-means, and selects one
representative workload per cluster — reducing BigDataBench's 77
workloads to 17.
"""

from repro.core.normalize import gaussian_normalize, NormalizationModel
from repro.core.pca import PcaModel, fit_pca
from repro.core.kmeans import KMeansModel, fit_kmeans, choose_k_bic
from repro.core.subsetting import ReductionResult, reduce_workloads
from repro.core.profiler import Profiler, ProfileRecord
from repro.core.analyzer import Analyzer
from repro.core.independent import (
    INDEPENDENT_METRIC_NAMES,
    adjusted_rand_index,
    independent_matrix,
    independent_vector,
    reduce_workloads_independent,
)
from repro.core.wcrt import Wcrt

__all__ = [
    "gaussian_normalize",
    "NormalizationModel",
    "PcaModel",
    "fit_pca",
    "KMeansModel",
    "fit_kmeans",
    "choose_k_bic",
    "ReductionResult",
    "reduce_workloads",
    "Profiler",
    "ProfileRecord",
    "Analyzer",
    "Wcrt",
    "INDEPENDENT_METRIC_NAMES",
    "adjusted_rand_index",
    "independent_matrix",
    "independent_vector",
    "reduce_workloads_independent",
]
