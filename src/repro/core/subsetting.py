"""Workload subsetting: the 77 → 17 reduction.

Pipeline per §3: metric matrix → Gaussian normalisation → PCA →
K-means → choose, per cluster, the member closest to the centroid as
the representative.  The representative "represents" every member of
its cluster (the parenthesised counts in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.kmeans import KMeansModel, choose_k_bic, fit_kmeans
from repro.core.normalize import NormalizationModel, gaussian_normalize
from repro.core.pca import PcaModel, fit_pca


@dataclass
class ReductionResult:
    """Outcome of a WCRT reduction.

    Attributes:
        names: Workload names, in input order.
        representatives: One workload name per cluster (centroid-nearest).
        clusters: Mapping representative -> member names (including the
            representative itself); cluster size is the "represents"
            count of Table 2.
        labels: Cluster index per workload.
        kmeans / pca / normalization: The fitted stage models.
    """

    names: List[str]
    representatives: List[str]
    clusters: Dict[str, List[str]] = field(default_factory=dict)
    labels: np.ndarray = None
    kmeans: KMeansModel = None
    pca: PcaModel = None
    normalization: NormalizationModel = None

    @property
    def n_clusters(self) -> int:
        return len(self.representatives)

    def represents(self, representative: str) -> int:
        """Cluster size for a representative (Table 2's parentheses)."""
        return len(self.clusters[representative])

    def cluster_of(self, name: str) -> str:
        """The representative whose cluster contains ``name``."""
        for representative, members in self.clusters.items():
            if name in members:
                return representative
        raise KeyError(name)


def reduce_workloads(
    names: Sequence[str],
    metric_matrix: np.ndarray,
    k: Optional[int] = 17,
    variance_to_keep: float = 0.90,
    seed: int = 0,
) -> ReductionResult:
    """Run the full WCRT reduction.

    Args:
        names: Workload identifiers, one per matrix row.
        metric_matrix: (workloads x 45) raw metric values.
        k: Number of clusters; None selects K by BIC (the paper's
            companion methodology), 17 reproduces the paper's result.
        variance_to_keep: PCA cumulative-variance threshold.
        seed: RNG seed for k-means restarts.
    """
    matrix = np.asarray(metric_matrix, dtype=float)
    names = list(names)
    if matrix.shape[0] != len(names):
        raise ValueError("one name per matrix row required")
    if len(set(names)) != len(names):
        raise ValueError("workload names must be unique")

    normalized, normalization = gaussian_normalize(matrix)
    pca = fit_pca(normalized, variance_to_keep=variance_to_keep)
    projected = pca.transform(normalized)

    if k is None:
        k = choose_k_bic(projected, seed=seed)
    kmeans = fit_kmeans(projected, k, seed=seed)

    representatives: List[str] = []
    clusters: Dict[str, List[str]] = {}
    for cluster in range(kmeans.k):
        member_indices = np.where(kmeans.labels == cluster)[0]
        if len(member_indices) == 0:
            continue
        distances = (
            (projected[member_indices] - kmeans.centroids[cluster]) ** 2
        ).sum(axis=1)
        representative_index = member_indices[distances.argmin()]
        representative = names[representative_index]
        representatives.append(representative)
        clusters[representative] = [names[i] for i in member_indices]

    # Order clusters by descending size, as Table 2 lists them.
    representatives.sort(key=lambda name: -len(clusters[name]))

    return ReductionResult(
        names=names,
        representatives=representatives,
        clusters=clusters,
        labels=kmeans.labels,
        kmeans=kmeans,
        pca=pca,
        normalization=normalization,
    )
