"""Principal component analysis (§3: "use PCA to reduce the dimensions").

Implemented from first principles on the covariance eigen-decomposition
(no scikit-learn): components are the eigenvectors of the covariance
matrix of the normalised metrics, ordered by explained variance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PcaModel:
    """A fitted PCA basis.

    Attributes:
        components: (k, d) matrix; rows are principal directions.
        explained_variance: Eigenvalues for the kept components.
        explained_variance_ratio: Eigenvalue shares of total variance.
        mean: Column means removed before projection.
    """

    components: np.ndarray
    explained_variance: np.ndarray
    explained_variance_ratio: np.ndarray
    mean: np.ndarray

    @property
    def n_components(self) -> int:
        return self.components.shape[0]

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Project rows of ``matrix`` onto the principal components."""
        matrix = np.asarray(matrix, dtype=float)
        return (matrix - self.mean) @ self.components.T

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Reconstruct (lossily) from component space."""
        return np.asarray(projected, dtype=float) @ self.components + self.mean


def fit_pca(
    matrix: np.ndarray,
    n_components: int = None,
    variance_to_keep: float = 0.90,
) -> PcaModel:
    """Fit PCA on a (workloads x metrics) matrix.

    When ``n_components`` is None, keeps the smallest number of
    components whose cumulative explained variance reaches
    ``variance_to_keep`` (the conventional choice in the workload-
    subsetting literature the paper builds on, e.g. Phansalkar et al.).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    n_rows, n_cols = matrix.shape
    if n_rows < 2:
        raise ValueError("need at least two rows to fit PCA")
    if not 0.0 < variance_to_keep <= 1.0:
        raise ValueError("variance_to_keep must be in (0, 1]")

    mean = matrix.mean(axis=0)
    centered = matrix - mean
    covariance = (centered.T @ centered) / (n_rows - 1)
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    # eigh returns ascending order; we want descending.
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.maximum(eigenvalues[order], 0.0)
    eigenvectors = eigenvectors[:, order]

    total = eigenvalues.sum()
    if total <= 0:
        raise ValueError("matrix has no variance to analyse")
    ratios = eigenvalues / total

    if n_components is None:
        cumulative = np.cumsum(ratios)
        n_components = int(np.searchsorted(cumulative, variance_to_keep) + 1)
    n_components = max(1, min(n_components, n_cols, n_rows - 1))

    return PcaModel(
        components=eigenvectors[:, :n_components].T.copy(),
        explained_variance=eigenvalues[:n_components].copy(),
        explained_variance_ratio=ratios[:n_components].copy(),
        mean=mean,
    )
