"""Microarchitecture-independent workload characterization.

The paper closes §6 with: "We will perform system-independent
characterization work on representative big data workloads in near
future", citing Hoste & Eeckhout (IEEE Micro 2007) and Eeckhout et al.
This module implements that extension: a metric vector derived purely
from the workload's behaviour model — instruction mix, inherent ILP,
branch-stream statistics, code/data footprints, reuse behaviour and
operation intensity — with no cache geometry, predictor organisation or
pipeline width anywhere in the loop.

:func:`independent_vector` extracts the metrics from a
:class:`repro.uarch.profile.BehaviorProfile`;
:func:`reduce_workloads_independent` runs the same normalisation → PCA
→ K-means pipeline WCRT uses on the microarchitecture-dependent
metrics; :func:`adjusted_rand_index` quantifies how well the two
clusterings agree.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.subsetting import ReductionResult, reduce_workloads
from repro.uarch.isa import InstructionClass
from repro.uarch.profile import BehaviorProfile

#: Names of the microarchitecture-independent metrics, in vector order.
INDEPENDENT_METRIC_NAMES: List[str] = [
    # instruction mix (6)
    "ratio_load",
    "ratio_store",
    "ratio_branch",
    "ratio_integer",
    "ratio_fp",
    "ratio_other",
    # integer purpose (2)
    "int_addr_share",
    "fp_addr_share",
    # inherent parallelism (1)
    "ilp",
    # branch-stream statistics (5)
    "branch_loop_fraction",
    "branch_data_dependent_fraction",
    "branch_taken_bias",
    "branch_indirect_fraction",
    "log_branch_sites",
    # footprints and locality (6)
    "log_code_footprint",
    "code_hot_concentration",
    "log_data_state",
    "log_data_stream",
    "data_state_fraction",
    "data_state_skew",
    # operation intensity (3)
    "instructions_per_byte",
    "fp_ops_per_byte",
    "log_instructions",
]


def independent_vector(profile: BehaviorProfile) -> np.ndarray:
    """The microarchitecture-independent metric vector of a profile.

    Every quantity is a property of the program + data, not of any
    machine: footprints are static sizes, branch statistics describe the
    outcome stream, ILP is the dependence-distance bound.
    """
    ratios = profile.mix.ratios()
    weights = profile.code.normalized_weights()
    # Hot concentration: fetch share of the single hottest region — a
    # geometry-free proxy for instruction locality.
    hot_concentration = max(weights)
    branches = profile.branches
    taken_bias = (
        branches.loop_fraction * (1.0 - 1.0 / branches.loop_trip)
        + branches.pattern_fraction * 0.75
        + branches.data_dependent_fraction * branches.taken_prob
    )
    data = profile.data

    values: Dict[str, float] = {
        "ratio_load": ratios[InstructionClass.LOAD],
        "ratio_store": ratios[InstructionClass.STORE],
        "ratio_branch": ratios[InstructionClass.BRANCH],
        "ratio_integer": ratios[InstructionClass.INTEGER],
        "ratio_fp": ratios[InstructionClass.FP],
        "ratio_other": ratios[InstructionClass.OTHER],
        "int_addr_share": profile.int_breakdown.int_addr,
        "fp_addr_share": profile.int_breakdown.fp_addr,
        "ilp": profile.ilp,
        "branch_loop_fraction": branches.loop_fraction,
        "branch_data_dependent_fraction": branches.data_dependent_fraction,
        "branch_taken_bias": taken_bias,
        "branch_indirect_fraction": branches.indirect_fraction,
        "log_branch_sites": math.log2(branches.static_sites),
        "log_code_footprint": math.log2(max(1, profile.code.total_bytes)),
        "code_hot_concentration": hot_concentration,
        "log_data_state": math.log2(max(1, data.state_bytes + data.hot_bytes)),
        "log_data_stream": math.log2(max(1, data.stream_bytes)),
        "data_state_fraction": data.state_fraction,
        "data_state_skew": data.state_zipf,
        "instructions_per_byte": profile.instructions / profile.bytes_processed,
        "fp_ops_per_byte": profile.fp_ops / profile.bytes_processed,
        "log_instructions": math.log2(max(2, profile.instructions)),
    }
    return np.array([values[name] for name in INDEPENDENT_METRIC_NAMES])


def independent_matrix(profiles: Sequence[BehaviorProfile]) -> np.ndarray:
    """(workloads x metrics) matrix for a profile population."""
    if not profiles:
        raise ValueError("need at least one profile")
    return np.vstack([independent_vector(p) for p in profiles])


def reduce_workloads_independent(
    names: Sequence[str],
    profiles: Sequence[BehaviorProfile],
    k: Optional[int] = 17,
    seed: int = 0,
) -> ReductionResult:
    """The WCRT reduction on microarchitecture-independent metrics."""
    return reduce_workloads(names, independent_matrix(profiles), k=k, seed=seed)


def adjusted_rand_index(labels_a: Sequence[int], labels_b: Sequence[int]) -> float:
    """Agreement between two clusterings, chance-corrected (Hubert &
    Arabie's ARI): 1 = identical partitions, ~0 = random agreement."""
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape:
        raise ValueError("label vectors must have equal length")
    n = labels_a.shape[0]
    if n < 2:
        raise ValueError("need at least two points")

    classes_a = np.unique(labels_a)
    classes_b = np.unique(labels_b)
    contingency = np.zeros((classes_a.size, classes_b.size), dtype=np.int64)
    for i, a in enumerate(classes_a):
        for j, b in enumerate(classes_b):
            contingency[i, j] = int(((labels_a == a) & (labels_b == b)).sum())

    def comb2(x: np.ndarray) -> float:
        return float((x * (x - 1) // 2).sum())

    sum_cells = comb2(contingency)
    sum_rows = comb2(contingency.sum(axis=1))
    sum_cols = comb2(contingency.sum(axis=0))
    total = n * (n - 1) / 2
    expected = sum_rows * sum_cols / total
    maximum = (sum_rows + sum_cols) / 2
    if math.isclose(maximum, expected):
        return 1.0
    return (sum_cells - expected) / (maximum - expected)
