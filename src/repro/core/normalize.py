"""Gaussian normalisation of metric matrices (§3 of the paper).

"We normalize these metric values to a Gaussian distribution": each
metric column is standardised to zero mean and unit variance so that
metrics with large numeric ranges (MPKI values) do not dominate ratios
in the PCA that follows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class NormalizationModel:
    """Per-column mean/std captured from a fitted matrix."""

    mean: np.ndarray
    std: np.ndarray

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Standardise ``matrix`` using the fitted statistics."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.mean.shape[0]:
            raise ValueError(
                f"expected (n, {self.mean.shape[0]}) matrix, got {matrix.shape}"
            )
        return (matrix - self.mean) / self.std

    def inverse(self, matrix: np.ndarray) -> np.ndarray:
        """Undo the standardisation."""
        return np.asarray(matrix, dtype=float) * self.std + self.mean


def gaussian_normalize(matrix: np.ndarray) -> tuple:
    """Fit and apply column standardisation.

    Columns with zero variance (a metric identical for every workload)
    are mapped to zero rather than dividing by zero.

    Returns ``(normalized_matrix, model)``.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D (workloads x metrics) matrix")
    if matrix.shape[0] < 2:
        raise ValueError("need at least two workloads to normalise")
    if not np.isfinite(matrix).all():
        raise ValueError("metric matrix contains non-finite values")
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    model = NormalizationModel(mean=mean, std=std)
    return model.transform(matrix), model
