"""The WCRT performance-data analyzer (§2.2).

"The analyzer is deployed on a dedicated node that does not run other
workloads.  After collecting the performance data from all profilers,
the analyzer processes them using statistical and visual functions."

The statistical functions are the Gaussian normalisation and PCA of
§3; the visual functions render text summaries (metric tables and
distribution sketches) suitable for terminals and reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.profiler import ProfileRecord
from repro.core.subsetting import ReductionResult, reduce_workloads
from repro.uarch.counters import METRIC_NAMES


class Analyzer:
    """Aggregates profiler records and runs the reduction pipeline."""

    def __init__(self, metric_names: Optional[Sequence[str]] = None):
        self.metric_names = (
            list(metric_names) if metric_names is not None else list(METRIC_NAMES)
        )
        self._records: List[ProfileRecord] = []

    # ---- collection ------------------------------------------------------
    def collect(self, record: ProfileRecord) -> None:
        """Receive one record from a profiler."""
        if record.metrics.shape[0] != len(self.metric_names):
            raise ValueError(
                f"record has {record.metrics.shape[0]} metrics, analyzer "
                f"expects {len(self.metric_names)}"
            )
        if any(r.workload_id == record.workload_id for r in self._records):
            raise ValueError(f"duplicate record for {record.workload_id!r}")
        self._records.append(record)

    def collect_all(self, records: Sequence[ProfileRecord]) -> None:
        for record in records:
            self.collect(record)

    @property
    def n_records(self) -> int:
        return len(self._records)

    @property
    def workload_ids(self) -> List[str]:
        return [record.workload_id for record in self._records]

    def metric_matrix(self) -> np.ndarray:
        """(workloads x metrics) raw matrix in collection order."""
        if not self._records:
            raise ValueError("no records collected")
        return np.vstack([record.metrics for record in self._records])

    # ---- statistical functions --------------------------------------------
    def reduce(self, k: Optional[int] = 17, seed: int = 0) -> ReductionResult:
        """Run normalisation → PCA → K-means → subsetting."""
        return reduce_workloads(
            self.workload_ids, self.metric_matrix(), k=k, seed=seed
        )

    def metric_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-metric mean/std/min/max across collected workloads."""
        matrix = self.metric_matrix()
        summary = {}
        for i, name in enumerate(self.metric_names):
            column = matrix[:, i]
            summary[name] = {
                "mean": float(column.mean()),
                "std": float(column.std()),
                "min": float(column.min()),
                "max": float(column.max()),
            }
        return summary

    # ---- visual functions ----------------------------------------------------
    def render_metric_table(self, metrics: Sequence[str]) -> str:
        """A fixed-width text table of selected metrics per workload."""
        indices = [self.metric_names.index(m) for m in metrics]
        header = f"{'workload':24s}" + "".join(f"{m:>18s}" for m in metrics)
        lines = [header, "-" * len(header)]
        for record in self._records:
            row = f"{record.workload_id:24s}" + "".join(
                f"{record.metrics[i]:18.4f}" for i in indices
            )
            lines.append(row)
        return "\n".join(lines)

    def render_pca_scatter(
        self,
        reduction=None,
        width: int = 64,
        height: int = 20,
    ) -> str:
        """ASCII scatter of the workloads in the first two principal
        components, labelled by cluster (one letter per cluster)."""
        if reduction is None:
            reduction = self.reduce()
        normalized = reduction.normalization.transform(self.metric_matrix())
        projected = reduction.pca.transform(normalized)[:, :2]
        if projected.shape[1] < 2:
            # A single retained component: plot it against a zero axis.
            projected = np.column_stack(
                [projected[:, 0], np.zeros(projected.shape[0])]
            )
        x, y = projected[:, 0], projected[:, 1]
        x_min, x_max = float(x.min()), float(x.max())
        y_min, y_max = float(y.min()), float(y.max())
        x_span = max(1e-9, x_max - x_min)
        y_span = max(1e-9, y_max - y_min)
        grid = [[" "] * width for _ in range(height)]
        letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
        for i, name in enumerate(self.workload_ids):
            column = int((x[i] - x_min) / x_span * (width - 1))
            row = int((y[i] - y_min) / y_span * (height - 1))
            cluster = int(reduction.labels[i]) % len(letters)
            grid[height - 1 - row][column] = letters[cluster]
        lines = ["PCA scatter (PC1 x PC2), letters = clusters"]
        lines += ["|" + "".join(row) + "|" for row in grid]
        legend = ", ".join(
            f"{letters[int(reduction.labels[self.workload_ids.index(rep)]) % len(letters)]}={rep}"
            for rep in reduction.representatives[:10]
        )
        lines.append(f"legend: {legend}")
        return "\n".join(lines)

    def render_distribution(self, metric: str, bins: int = 10, width: int = 40) -> str:
        """An ASCII histogram of one metric across workloads."""
        index = self.metric_names.index(metric)
        values = self.metric_matrix()[:, index]
        counts, edges = np.histogram(values, bins=bins)
        peak = max(1, counts.max())
        lines = [f"{metric} distribution ({len(values)} workloads)"]
        for count, low, high in zip(counts, edges[:-1], edges[1:]):
            bar = "#" * int(round(width * count / peak))
            lines.append(f"  [{low:10.3f}, {high:10.3f}) {bar} {count}")
        return "\n".join(lines)
