"""The WCRT profiler (§2.2).

"On each node, a profiler is deployed to characterize workloads running
on it.  The profiler collects performance metrics specified by users
once a workload begins to run, and transfers the collected data to the
performance data analyzer when the workload completes."

Here a profiler wraps the execution of a workload definition plus the
micro-architecture characterization on a platform, producing one
:class:`ProfileRecord` per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.uarch.counters import METRIC_NAMES, PerfCounters, characterize
from repro.uarch.platforms import XEON_E5645, Platform
from repro.workloads.base import WorkloadDefinition


@dataclass
class ProfileRecord:
    """One workload's collected metrics, as shipped to the analyzer."""

    workload_id: str
    metrics: np.ndarray
    counters: PerfCounters
    node: str = "node0"

    def metric(self, name: str) -> float:
        """Value of one named metric."""
        return float(self.metrics[METRIC_NAMES.index(name)])


class Profiler:
    """Characterizes workloads assigned to one (simulated) node."""

    def __init__(
        self,
        node: str = "node0",
        platform: Platform = XEON_E5645,
        scale: float = 0.5,
        metric_names: Optional[Sequence[str]] = None,
    ):
        self.node = node
        self.platform = platform
        self.scale = scale
        self.metric_names = (
            list(metric_names) if metric_names is not None else list(METRIC_NAMES)
        )
        unknown = set(self.metric_names) - set(METRIC_NAMES)
        if unknown:
            raise ValueError(f"unknown metrics requested: {sorted(unknown)}")

    def profile(self, definition: WorkloadDefinition, seed: int = 0) -> ProfileRecord:
        """Run one workload and collect its metric vector."""
        result = definition.runner(scale=self.scale, seed=seed)
        counters = characterize(result.profile, self.platform, seed=1234 + seed)
        all_metrics = counters.metric_dict()
        metrics = np.array([all_metrics[name] for name in self.metric_names])
        return ProfileRecord(
            workload_id=definition.workload_id,
            metrics=metrics,
            counters=counters,
            node=self.node,
        )

    def profile_many(
        self, definitions: Sequence[WorkloadDefinition], seed: int = 0
    ) -> List[ProfileRecord]:
        """Profile a batch of workloads on this node."""
        return [self.profile(definition, seed=seed) for definition in definitions]
