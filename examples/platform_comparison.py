"""The Table 4 branch study: Xeon E5645 versus Atom D510.

Characterizes each of the 17 representative workloads on both platform
models.  The Xeon's hybrid predictor (two-level + loop counter, an
indirect predictor, an 8192-entry BTB) against the Atom's two-level
global-history predictor with a 128-entry BTB — the paper measures
2.8% vs 7.8% average misprediction.

    python examples/platform_comparison.py
"""

from repro.experiments import ExperimentContext, table4_branch
from repro.report.tables import render_table


def main() -> None:
    print("profiling the 17 representatives on both platforms ...\n")
    context = ExperimentContext(scale=0.4)
    result = table4_branch.run(context)
    print(result.render())

    print("\nTable 4 — the prediction hardware being compared:")
    print(render_table(
        ["component", "Atom D510", "Xeon E5645"],
        [
            ["conditional jumps", "two-level, global history",
             "hybrid: two-level + loop counter"],
            ["indirect jumps/calls", "none (BTB last-target)",
             "two-level predictor"],
            ["BTB entries", 128, 8192],
            ["misprediction penalty", "15 cycles", "11-13 cycles"],
        ],
    ))


if __name__ == "__main__":
    main()
