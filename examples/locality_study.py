"""The §5.4 locality study: cache miss ratio versus capacity.

Replays the paper's MARSSx86 experiment: sweep an 8-way L1 cache from
16 KB to 8192 KB over the instruction and data streams of the Hadoop
workloads, PARSEC and the MPI versions, and plot the miss-ratio curves
(Figures 6-9) as ASCII series.

    python examples/locality_study.py
"""

from repro.experiments import ExperimentContext, fig6to9_locality
from repro.report.tables import render_series


def sparkline(values, width: int = 30) -> str:
    peak = max(max(values), 1e-9)
    blocks = " .:-=+*#%@"
    return "".join(
        blocks[min(len(blocks) - 1, int(v / peak * (len(blocks) - 1)))]
        for v in values
    )


def main() -> None:
    print("running the cache-capacity sweeps (a minute or two) ...\n")
    context = ExperimentContext(scale=0.4)
    result = fig6to9_locality.run(context, trace_refs=25_000)

    print(render_series(
        "KB", result.sizes_kb, result.instruction,
        title="Instruction cache miss ratio vs size (Figures 6 and 9)",
    ))
    print()
    print(render_series(
        "KB", result.sizes_kb, result.data,
        title="Data cache miss ratio vs size (Figure 7)",
    ))
    print()
    print(render_series(
        "KB", result.sizes_kb, result.unified,
        title="Unified miss ratio vs size (Figure 8)",
    ))

    print("\nshape summary (16 KB -> 8 MB):")
    for name, series in result.instruction.items():
        print(f"  {name:18s} |{sparkline(series)}|")
    print(f"\nfootprint knees: {result.knees_kb} "
          "(paper: Hadoop ~1024 KB, PARSEC ~128 KB)")


if __name__ == "__main__":
    main()
