"""System-behaviour characterization on the discrete-event cluster.

Runs a handful of Table 2 workloads on the simulated 5-node testbed
(Xeon E5645 nodes, one disk and one NIC each), reads off the §3.2.1
metrics (CPU utilisation, I/O wait, weighted disk I/O time, bandwidth)
and applies the paper's classification rules, next to the §3.2.2
data-behaviour buckets.

    python examples/cluster_playground.py
"""

from repro.report.tables import render_table
from repro.system import characterize_system
from repro.workloads import workload

WORKLOADS = (
    "H-Read",        # service reads: IO-intensive
    "H-Grep",        # scanning: CPU-intensive
    "S-WordCount",   # shuffle-heavy: IO-intensive
    "S-Kmeans",      # iterative FP: CPU-intensive
    "I-SelectQuery", # scan-rate bound: IO-intensive
)


def main() -> None:
    rows = []
    for workload_id in WORKLOADS:
        definition = workload(workload_id)
        print(f"running {workload_id} on a fresh 5-node cluster ...")
        characterization = characterize_system(definition, scale=0.4)
        metrics = characterization.metrics
        rows.append(
            [
                workload_id,
                f"{metrics.cpu_utilization:.2f}",
                f"{metrics.io_wait_ratio:.2f}",
                f"{metrics.weighted_io_time_ratio:.2f}",
                f"{metrics.disk_bandwidth_mbps:.1f}",
                characterization.system_behavior.value,
                definition.expected_system_behavior.value,
                characterization.data_behavior.describe(),
            ]
        )
    print()
    print(render_table(
        ["workload", "cpu", "iowait", "wIO", "disk MB/s", "measured",
         "Table 2", "data behaviour"],
        rows,
        title="§3.2 system behaviours on the simulated testbed",
    ))


if __name__ == "__main__":
    main()
