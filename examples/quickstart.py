"""Quickstart: characterize one big data workload end to end.

Runs the Spark WordCount of Table 2 over generated Wikipedia-like text,
plays its behaviour profile through the Xeon E5645 model, and prints
the full 45-metric characterization the WCRT pipeline consumes.

    python examples/quickstart.py [scale]
"""

import sys

from repro.uarch import XEON_E5645, characterize
from repro.workloads.kernels import spark_wordcount


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    print(f"running S-WordCount at scale {scale} ...")
    result = spark_wordcount(scale=scale)
    counts = dict(result.output)
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print(f"  counted {len(counts)} distinct words; top 5: {top}")
    print(f"  data flow: {result.meter.bytes_in} bytes in, "
          f"{result.meter.bytes_shuffled} shuffled, "
          f"{result.meter.bytes_out} out")

    print("\ncharacterizing on the Intel Xeon E5645 model (Table 3) ...")
    counters = characterize(result.profile, XEON_E5645)
    print(f"  IPC                {counters.ipc:8.2f}")
    print(f"  L1I MPKI           {counters.l1i_mpki:8.2f}")
    print(f"  L2 MPKI            {counters.l2_mpki:8.2f}")
    print(f"  L3 MPKI            {counters.l3_mpki:8.2f}")
    print(f"  branch mispredict  {counters.branch_mispred_ratio:8.4f}")

    print("\nall 45 metrics:")
    for name, value in counters.metric_dict().items():
        print(f"  {name:26s} {value:12.4f}")


if __name__ == "__main__":
    main()
