"""A roofline view of the §5.1 floating-point implication.

Places the 17 representatives and the comparison suites on an ASCII
roofline (operation intensity vs achieved GFLOPS) for the Xeon E5645
model (57.6 GFLOPS peak, ~32 GB/s off-core bandwidth): big data
workloads sit deep in the bottom-left corner, which is the paper's
wasted-FP-capacity argument in one picture.

    python examples/roofline.py
"""

import math

from repro.comparison import SUITES
from repro.experiments import ExperimentContext
from repro.workloads import REPRESENTATIVE_WORKLOADS

WIDTH, HEIGHT = 68, 20
PEAK_GFLOPS = 57.6
BANDWIDTH_GBS = 32.0


def to_cell(x, y, x_range, y_range):
    column = int((x - x_range[0]) / (x_range[1] - x_range[0]) * (WIDTH - 1))
    row = int((y - y_range[0]) / (y_range[1] - y_range[0]) * (HEIGHT - 1))
    return max(0, min(WIDTH - 1, column)), max(0, min(HEIGHT - 1, row))


def main() -> None:
    context = ExperimentContext(scale=0.4)
    points = []
    for definition in REPRESENTATIVE_WORKLOADS:
        metrics = context.counters(definition.workload_id).metric_dict()
        points.append(("b", metrics["fp_ops_per_byte"], metrics["gflops"]))
    for suite_name, marker in (("HPCC", "H"), ("SPECFP", "F"), ("PARSEC", "P")):
        intensity = context.suite_average(suite_name, "fp_ops_per_byte")
        gflops = context.suite_average(suite_name, "gflops")
        points.append((marker, intensity, gflops))

    # Log-log axes.
    xs = [max(1e-6, p[1]) for p in points]
    ys = [max(1e-3, p[2]) for p in points]
    x_range = (math.log10(min(xs)) - 0.3, math.log10(max(xs)) + 0.3)
    y_range = (math.log10(min(ys)) - 0.3, math.log10(PEAK_GFLOPS) + 0.3)

    grid = [[" "] * WIDTH for _ in range(HEIGHT)]
    # Draw the roofs: memory slope and compute ceiling.
    for column in range(WIDTH):
        x_log = x_range[0] + column / (WIDTH - 1) * (x_range[1] - x_range[0])
        roof = min(PEAK_GFLOPS, BANDWIDTH_GBS * (10 ** x_log))
        _c, row = to_cell(x_log, math.log10(max(1e-3, roof)), x_range, y_range)
        grid[HEIGHT - 1 - row][column] = "-" if roof >= PEAK_GFLOPS else "/"
    for marker, x, y in points:
        column, row = to_cell(
            math.log10(max(1e-6, x)), math.log10(max(1e-3, y)),
            x_range, y_range,
        )
        grid[HEIGHT - 1 - row][column] = marker

    print("Roofline (log-log): FP ops/byte vs achieved GFLOPS")
    print(f"ceiling {PEAK_GFLOPS} GFLOPS, memory slope {BANDWIDTH_GBS} GB/s")
    for row in grid:
        print("|" + "".join(row) + "|")
    print("b = big data representatives, H = HPCC, F = SPECFP, P = PARSEC")
    bigdata = [p for p in points if p[0] == "b"]
    mean_gflops = sum(p[2] for p in bigdata) / len(bigdata)
    print(
        f"\nbig data mean: {mean_gflops:.2f} GFLOPS — "
        f"{100 * mean_gflops / PEAK_GFLOPS:.1f}% of peak "
        "(the paper quotes ~0.1 GFLOPS of 57.6)"
    )


if __name__ == "__main__":
    main()
