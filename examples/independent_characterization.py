"""Microarchitecture-independent characterization (the paper's §6 plan).

Characterizes a slice of the catalog twice — once through the simulated
PMU (the 45 dependent metrics) and once from pure program properties
(the 23 independent metrics) — clusters both, and reports how much the
partitions agree.  High agreement supports the paper's premise that the
workload structure WCRT finds is a property of the programs, not of the
Xeon it measured them on.

    python examples/independent_characterization.py
"""

import numpy as np

from repro.core import (
    adjusted_rand_index,
    independent_matrix,
    reduce_workloads,
    reduce_workloads_independent,
)
from repro.experiments import ExperimentContext
from repro.workloads import ALL_WORKLOADS

POPULATION = [d.workload_id for d in ALL_WORKLOADS[:30]]
K = 8


def main() -> None:
    context = ExperimentContext(scale=0.4)
    print(f"characterizing {len(POPULATION)} workloads both ways ...")

    names, vectors, profiles = [], [], []
    for workload_id in POPULATION:
        counters = context.counters(workload_id)
        names.append(workload_id)
        vectors.append(counters.metric_vector())
        profiles.append(context.result(workload_id).profile)

    dependent = reduce_workloads(names, np.vstack(vectors), k=K, seed=1)
    independent = reduce_workloads_independent(names, profiles, k=K, seed=1)

    print("\nPMU-metric clusters:")
    for rep in dependent.representatives:
        print(f"  {rep:26s} x{dependent.represents(rep)}")
    print("\nmicroarchitecture-independent clusters:")
    for rep in independent.representatives:
        print(f"  {rep:26s} x{independent.represents(rep)}")

    ari = adjusted_rand_index(dependent.labels, independent.labels)
    print(f"\nadjusted Rand index between the partitions: {ari:.3f} "
          "(1 = identical, ~0 = chance)")


if __name__ == "__main__":
    main()
