"""The §5.5 software-stack study: one algorithm, three stacks.

Runs WordCount as MPI, Hadoop and Spark implementations over the same
generated corpus — all three produce identical word counts — then
characterizes each on the Xeon E5645 model.  The paper's finding: the
L1I cache miss rates differ by an order of magnitude between the thin
MPI stack and the JVM stacks (2 vs 7 vs 17 MPKI), and IPC follows
(1.8 vs 1.1 vs 0.9).

    python examples/stack_comparison.py
"""

from repro.report.tables import render_table
from repro.uarch import XEON_E5645, characterize
from repro.workloads.kernels import (
    hadoop_wordcount,
    mpi_wordcount,
    spark_wordcount,
)

PAPER_NUMBERS = {
    "M-WordCount": {"ipc": 1.8, "l1i": 2.0},
    "H-WordCount": {"ipc": 1.1, "l1i": 7.0},
    "S-WordCount": {"ipc": 0.9, "l1i": 17.0},
}


def main() -> None:
    rows = []
    for runner in (mpi_wordcount, hadoop_wordcount, spark_wordcount):
        result = runner(scale=0.5)
        counters = characterize(result.profile, XEON_E5645)
        paper = PAPER_NUMBERS[result.name]
        rows.append(
            [
                result.name,
                f"{counters.ipc:.2f} ({paper['ipc']})",
                f"{counters.l1i_mpki:.1f} ({paper['l1i']})",
                f"{counters.l2_mpki:.1f}",
                f"{counters.l3_mpki:.2f}",
                f"{result.profile.code.total_bytes // 1024} KB",
            ]
        )
    print(render_table(
        ["workload", "IPC (paper)", "L1I MPKI (paper)", "L2", "L3",
         "code footprint"],
        rows,
        title="WordCount across software stacks — §5.5 of the paper",
    ))
    print(
        "\nThe stack, not the algorithm, sets the front-end behaviour: "
        "the MPI version's instruction footprint is PARSEC-sized, the "
        "JVM stacks' footprints are an order of magnitude larger."
    )


if __name__ == "__main__":
    main()
