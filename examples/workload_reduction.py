"""The paper's headline experiment: reduce 77 workloads to 17 (§3, Table 2).

Deploys WCRT (five profilers + one analyzer), characterizes every
workload in the BigDataBench catalog, normalises the 45-metric matrix
to a Gaussian distribution, reduces dimensionality with PCA, clusters
with K-means (K = 17) and selects one centroid-nearest representative
per cluster.

    python examples/workload_reduction.py [--quick]

``--quick`` clusters a 30-workload subset (about a quarter of the full
run time) so the pipeline can be explored interactively.
"""

import sys
import time

from repro.core import Wcrt
from repro.workloads import ALL_WORKLOADS


def main() -> None:
    quick = "--quick" in sys.argv
    population = ALL_WORKLOADS[:30] if quick else ALL_WORKLOADS
    k = 8 if quick else 17

    print(f"characterizing {len(population)} workloads on 5 profilers ...")
    start = time.time()
    wcrt = Wcrt(n_profilers=5, scale=0.4)
    result = wcrt.reduce(population, k=k)
    elapsed = time.time() - start

    print(f"\n{result.n_clusters} clusters in {elapsed:.0f}s "
          f"(paper: 77 workloads -> 17 representatives)\n")
    for representative in result.representatives:
        members = result.clusters[representative]
        others = ", ".join(m for m in members if m != representative)
        print(f"  {representative:26s} represents {len(members):2d}"
              f"{':  ' + others if others else ''}")

    print("\nPCA retained "
          f"{result.pca.n_components} components explaining "
          f"{100 * result.pca.explained_variance_ratio.sum():.0f}% of variance\n")
    print(wcrt.analyzer.render_pca_scatter(result))


if __name__ == "__main__":
    main()
