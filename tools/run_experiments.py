"""Regenerate every table and figure in one session.

    python tools/run_experiments.py [scale] > results.txt

This is the script that produced the numbers in EXPERIMENTS.md.
"""

import sys
import time

sys.path.insert(0, "src")

from repro.experiments import (  # noqa: E402
    ExperimentContext,
    fig1_instruction_mix,
    fig2_integer_breakdown,
    fig3_ipc,
    fig4_cache,
    fig5_tlb,
    fig6to9_locality,
    stack_impact,
    system_behaviors,
    table1_datasets,
    table2_reduction,
    table4_branch,
)

EXPERIMENTS = (
    ("Table 1", table1_datasets.run, False),
    ("Figure 1", fig1_instruction_mix.run, True),
    ("Figure 2", fig2_integer_breakdown.run, True),
    ("Figure 3", fig3_ipc.run, True),
    ("Figure 4", fig4_cache.run, True),
    ("Figure 5", fig5_tlb.run, True),
    ("Figures 6-9", fig6to9_locality.run, True),
    ("Section 5.5", stack_impact.run, True),
    ("Table 4", table4_branch.run, True),
    ("Section 3.2", system_behaviors.run, True),
    ("Table 2", table2_reduction.run, True),
)


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    context = ExperimentContext(scale=scale)
    start = time.time()
    for title, runner, needs_context in EXPERIMENTS:
        print(f"\n{'=' * 88}\n{title}  [t+{time.time() - start:.0f}s]\n{'=' * 88}")
        result = runner(context) if needs_context else runner()
        print(result.render())
    print(f"\ncompleted in {time.time() - start:.0f}s at scale {scale}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
