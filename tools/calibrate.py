"""Calibration harness: paper anchor numbers vs simulated measurements.

Run after changing stack traits or uarch constants:
    python tools/calibrate.py
"""
import importlib.util
import sys
import time

sys.path.insert(0, "src")

spec = importlib.util.spec_from_file_location(
    "kernels_direct", "src/repro/workloads/kernels.py"
)
kern = importlib.util.module_from_spec(spec)
spec.loader.exec_module(kern)

from repro.uarch import characterize, XEON_E5645, ATOM_D510

# (workload runner, {metric: paper target})
ANCHORS = [
    (kern.hadoop_wordcount, {"ipc": 1.1, "l1i_mpki": 7, "l2_mpki": 8.4, "l3_mpki": 1.9}),
    (kern.spark_wordcount, {"ipc": 0.9, "l1i_mpki": 17, "l2_mpki": 16, "l3_mpki": 2.7}),
    (kern.mpi_wordcount, {"ipc": 1.8, "l1i_mpki": 2, "l2_mpki": 0.8, "l3_mpki": 0.1}),
    (kern.hadoop_grep, {"ipc": 1.3, "l1i_mpki": 10, "l2_mpki": 8, "l3_mpki": 1.5}),
    (kern.spark_sort, {"ipc": 1.1, "l1i_mpki": 14, "l2_mpki": 12, "l3_mpki": 1.5}),
    (kern.mpi_sort, {"ipc": 1.5, "l1i_mpki": 3, "l2_mpki": 4, "l3_mpki": 0.5}),
]

def main():
    rows = []
    for fn, targets in ANCHORS:
        res = fn(scale=0.5)
        pc = characterize(res.profile, XEON_E5645)
        d = pc.metric_dict()
        atom = characterize(res.profile, ATOM_D510)
        row = {"name": res.name}
        for metric, target in targets.items():
            row[metric] = (target, d[metric])
        row["mispred"] = (0.028, d["branch_mispred_ratio"])
        row["mispred_atom"] = (0.078, atom.metric_dict()["branch_mispred_ratio"])
        row["branch"] = (0.187, d["ratio_branch"])
        row["int"] = (0.38, d["ratio_integer"])
        row["dtlb"] = (0.9, d["dtlb_mpki"])
        row["itlb"] = (0.05, d["itlb_mpki"])
        rows.append(row)
    for row in rows:
        print(f"\n{row['name']}")
        for metric, pair in row.items():
            if metric == "name":
                continue
            target, measured = pair
            flag = "  " if 0.5 * target <= measured <= 2.0 * target else "<<" if measured < target else ">>"
            print(f"  {metric:14s} target={target:8.3f} measured={measured:8.3f} {flag}")

if __name__ == "__main__":
    t0 = time.time()
    main()
    print(f"\ntotal {time.time()-t0:.1f}s")
