"""CLI surface of the parallel sweep executor and typed exit codes."""

import json
import os

from repro.cli import main
from repro.obs.registry import RunRegistry


class TestSweepVerb:
    def test_parallel_sweep_matches_serial_bitwise(self, tmp_path):
        runs = str(tmp_path / "runs")
        base = ["--scale", "0.15", "--runs-dir", runs, "sweep",
                "--workloads", "H-Grep"]
        assert main(base + ["--jobs", "1", "--name", "serial"]) == 0
        assert main(base + ["--jobs", "2", "--name", "par"]) == 0
        registry = RunRegistry(runs)
        serial = registry.latest("sweep.serial")
        parallel = registry.latest("sweep.par")
        assert (
            json.dumps(serial.metrics, sort_keys=True)
            == json.dumps(parallel.metrics, sort_keys=True)
        )
        assert parallel.kind == "sweep"
        # Telemetry is quarantined in timings, never in metrics.
        assert parallel.timings["exec.jobs"] == 2.0
        assert not any(k.startswith("exec.") for k in parallel.metrics)

    def test_resume_skips_completed_cells(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        base = ["--scale", "0.15", "--runs-dir", runs, "sweep",
                "--workloads", "H-Grep", "--name", "r"]
        assert main(base + ["--jobs", "2"]) == 0
        capsys.readouterr()
        assert main(base + ["--jobs", "2", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint: 1" in out
        assert "cell executions: 0" in out

    def test_checkpoint_laid_out_under_sweeps(self, tmp_path):
        runs = str(tmp_path / "runs")
        assert main(["--scale", "0.15", "--runs-dir", runs, "sweep",
                     "--workloads", "H-Grep", "--name", "ck"]) == 0
        sweeps = os.listdir(os.path.join(runs, "sweeps"))
        assert len(sweeps) == 1
        assert sweeps[0].startswith("ck-")
        inside = os.listdir(os.path.join(runs, "sweeps", sweeps[0]))
        assert {"manifest.json", "journal.jsonl", "snapshot.json"} <= set(inside)

    def test_sweep_json_mode(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        assert main(["--scale", "0.15", "--runs-dir", runs, "sweep",
                     "--workloads", "H-Grep", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sweep"
        assert any(k.startswith("H-Grep.e5645.") for k in payload["metrics"])


class TestTypedExitCodes:
    def test_unknown_workload_in_sweep(self, capsys):
        assert main(["sweep", "--workloads", "NoSuch"]) == 2
        assert "UnknownWorkloadError" in capsys.readouterr().err

    def test_unknown_platform(self, capsys):
        assert main(["sweep", "--workloads", "H-Grep",
                     "--platforms", "m1"]) == 2
        assert "InvalidParameterError" in capsys.readouterr().err

    def test_invalid_scale(self, capsys):
        assert main(["--scale", "-0.5", "list"]) == 2
        assert "InvalidParameterError" in capsys.readouterr().err

    def test_invalid_seed(self, capsys):
        assert main(["run", "H-Grep", "--seed", "-1"]) == 2
        assert "--seed" in capsys.readouterr().err

    def test_invalid_jobs_and_cell_timeout(self, capsys):
        assert main(["sweep", "--workloads", "H-Grep", "--jobs", "0"]) == 2
        assert main(["sweep", "--workloads", "H-Grep",
                     "--cell-timeout", "0"]) == 2

    def test_missing_replay_file(self, capsys):
        assert main(["chaos", "--replay", "/nope/missing.json"]) == 2
        assert "ReplayFileError" in capsys.readouterr().err

    def test_malformed_replay_file(self, tmp_path, capsys):
        bad = str(tmp_path / "bad.json")
        open(bad, "w").write("{ not json")
        assert main(["chaos", "--replay", bad]) == 2
        assert "ReplayFileError" in capsys.readouterr().err
