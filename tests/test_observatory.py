"""The observatory: read-only aggregation and the golden-determinism bar.

The fixture tree below is deliberately damaged — a corrupt record, a
leaked tmp file, a torn journal tail, a torn span line — because the
hard guarantees are about damage: the aggregator must skip-and-report
(never crash, never rename), and two renders of the same directory
must be byte-identical, including across interpreter hash seeds.
"""

import json
import os
import subprocess
import sys

import repro
from repro.cli import main
from repro.exec.tracing import spans_to_timeline
from repro.obs import build_model, render_site
from repro.obs.dashboard import PAGES


def write(path, text):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(text)


def record_dict(experiment, kind, run_id, created_at, *, metrics=None,
                timings=None, series=None):
    return {
        "schema_version": 1,
        "run_id": run_id,
        "experiment": experiment,
        "kind": kind,
        "created_at": created_at,
        "provenance": {
            "git_sha": "fixture",
            "seed": 0,
            "scale": 0.25,
            "platforms": ["Xeon E5645"],
            "python": "3.11.0",
            "config_hash": "cafecafecafe",
        },
        "metrics": metrics or {},
        "series": series or {},
        "timings": timings or {},
    }


def build_fixture(root):
    """One runs directory exercising every observatory panel.

    No ``sweep.lock`` files: stale-lock findings depend on pid
    liveness, which would break cross-process byte-identity.
    """
    runs = os.path.join(root, "runs")
    os.makedirs(runs, exist_ok=True)

    for index, (created, ratio) in enumerate(
        [("2026-01-01T00:00:00Z", 3.1), ("2026-01-02T00:00:00Z", 3.4)]
    ):
        write(
            os.path.join(runs, f"fig4-fixture-{index}.json"),
            json.dumps(record_dict(
                "fig4", "figure", f"fig4-fixture-{index}", created,
                metrics={"mpki.S-WordCount.l1d": ratio,
                         "mpki.S-WordCount.l2": ratio / 2},
            ), indent=2, sort_keys=True) + "\n",
        )
    write(
        os.path.join(runs, "bench-fixture-0.json"),
        json.dumps(record_dict(
            "bench.uarch.trace-gen", "bench", "bench-fixture-0",
            "2026-01-03T00:00:00Z",
            metrics={"trace.fetch_lines": 40000.0},
            timings={
                "bench.schema": 1.0, "bench.reps": 3.0,
                "bench.median_s": 0.01, "bench.mad_s": 0.001,
                "bench.ci_lo_s": 0.009, "bench.ci_hi_s": 0.011,
                "bench.mean_s": 0.01, "bench.min_s": 0.009,
                "bench.max_s": 0.011,
            },
            series={"bench": {"schema_version": 1,
                              "target": "uarch.trace-gen",
                              "target_kind": "micro", "reps": 3,
                              "warmup": 1}},
        ), indent=2, sort_keys=True) + "\n",
    )
    write(
        os.path.join(runs, "profile-fixture-0.json"),
        json.dumps(record_dict(
            "profile", "profile", "profile-fixture-0",
            "2026-01-04T00:00:00Z",
            timings={
                "hostprof.total_s": 2.0,
                "hostprof.attributed_fraction": 0.9,
                "hostprof.self_s.repro.uarch.trace:generate_fetch_trace":
                    0.8,
                "hostprof.self_s.repro.uarch.cache:CacheLevel.access": 0.6,
            },
        ), indent=2, sort_keys=True) + "\n",
    )
    write(
        os.path.join(runs, "exec-fixture-0.json"),
        json.dumps(record_dict(
            "fig4", "figure", "exec-fixture-0", "2026-01-05T00:00:00Z",
            metrics={"mpki.S-WordCount.l1d": 3.2,
                     "mpki.S-WordCount.l2": 1.6},
            timings={"exec.stream_writes": 12.0,
                     "exec.stream_dropped_events": 2.0,
                     "exec.trace_writer_errors": 1.0},
        ), indent=2, sort_keys=True) + "\n",
    )

    # Damage tier: a corrupt record and a leaked atomic-write tmp.
    write(os.path.join(runs, "torn-record.json"), "{ nope")
    write(os.path.join(runs, "leaked.json.tmp.999"), "{}")

    # One sweep with progress, a torn journal tail and a span file.
    sweep = os.path.join(runs, "sweeps", "golden")
    write(os.path.join(sweep, "manifest.json"), json.dumps({
        "version": 1, "sweep": "golden", "config_hash": "cafe",
        "seed": 0, "config": {"verb": "fig4", "scale": 0.25},
        "n_cells": 3,
    }, indent=2, sort_keys=True) + "\n")
    write(os.path.join(sweep, "journal.jsonl"), "\n".join([
        json.dumps({"cell_id": "cellA", "status": "ok", "metrics": {},
                    "provenance_hash": "", "attempts": 1,
                    "seconds": 0.5, "worker": 0}),
        json.dumps({"cell_id": "cellB", "status": "quarantined",
                    "metrics": {}, "provenance_hash": "", "attempts": 3,
                    "seconds": 0.9, "worker": 1}),
        '{"cell_id": "cellC", "status"',  # torn tail (crash mid-append)
    ]) + "\n")
    write(os.path.join(sweep, "snapshot.json"), json.dumps({
        "version": 1,
        "cells": {"cellA": {"cell_id": "cellA", "status": "ok",
                            "metrics": {}, "provenance_hash": "",
                            "attempts": 1, "seconds": 0.5, "worker": 0}},
    }, indent=2, sort_keys=True) + "\n")
    write(os.path.join(sweep, "progress.jsonl"), "\n".join([
        json.dumps({"v": 1, "sweep": "golden", "t": 100.0,
                    "event": "sweep-started", "total": 3}),
        json.dumps({"v": 1, "sweep": "golden", "t": 101.0,
                    "event": "cell-finished", "done": 1, "total": 3,
                    "cells_per_s": 1.0, "eta_s": 2.0}),
        json.dumps({"v": 1, "sweep": "golden", "t": 102.0,
                    "event": "cell-retried", "cell": "cellB"}),
        json.dumps({"v": 1, "sweep": "golden", "t": 104.0,
                    "event": "sweep-finished", "done": 2, "total": 3}),
    ]) + "\n")
    write(os.path.join(sweep, "trace", "worker-100-0.spans.jsonl"),
          "\n".join([
              json.dumps({"kind": "span", "lane": "worker-100-0",
                          "pid": 100, "name": "cellA", "cat": "cell",
                          "t0": 100.2, "t1": 100.7, "args": {}}),
              json.dumps({"kind": "instant", "lane": "worker-100-0",
                          "pid": 100, "name": "retry", "cat": "retry",
                          "t": 100.8, "args": {}}),
              '{"kind": "span", "lane"',  # torn tail
          ]) + "\n")
    write(os.path.join(sweep, "trace", "supervisor-99.spans.jsonl"),
          json.dumps({"kind": "span", "lane": "supervisor-99", "pid": 99,
                      "name": "sweep", "cat": "queue", "t0": 100.0,
                      "t1": 104.0, "args": {}}) + "\n")
    return runs


def snapshot_tree(root):
    """Every file under root with its exact bytes."""
    state = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                state[os.path.relpath(path, root)] = handle.read()
    return state


def read_site(out_dir):
    return {
        name: open(os.path.join(out_dir, name), "rb").read()
        for name in sorted(os.listdir(out_dir))
    }


class TestAggregation:
    def test_model_indexes_every_tier(self, tmp_path):
        runs = build_fixture(str(tmp_path))
        model = build_model(runs)
        assert model.experiments() == [
            "bench.uarch.trace-gen", "fig4", "profile",
        ]
        assert [r.kind for r in model.of_kind("bench")] == ["bench"]
        assert len(model.sweeps) == 1
        sweep = model.sweeps[0]
        assert sweep.n_cells == 3
        assert sweep.done == 1 and sweep.quarantined == 1
        assert sweep.torn_journal_lines == 1
        assert sweep.finished and sweep.retries == 1
        assert sweep.last_throughput == 1.0
        lanes = [lane.lane for lane in sweep.lanes]
        assert lanes == ["supervisor-99", "worker-100-0"]

    def test_damage_is_skipped_and_reported_not_fatal(self, tmp_path):
        runs = build_fixture(str(tmp_path))
        model = build_model(runs)
        skipped_paths = [s.path for s in model.skipped]
        assert any(p.endswith("torn-record.json") for p in skipped_paths)
        kinds = {f["kind"] for f in model.findings}
        assert "corrupt-record" in kinds
        assert "leaked-tmp" in kinds
        assert "torn-journal" in kinds

    def test_aggregation_is_strictly_read_only(self, tmp_path):
        runs = build_fixture(str(tmp_path))
        before = snapshot_tree(runs)
        build_model(runs)
        assert snapshot_tree(runs) == before
        # The corrupt record is still in place, un-quarantined.
        assert os.path.isfile(os.path.join(runs, "torn-record.json"))

    def test_missing_directory_yields_empty_model(self, tmp_path):
        model = build_model(str(tmp_path / "nowhere"), fsck=True)
        assert model.records == [] and model.sweeps == []
        assert model.findings == []


class TestTimelineAdapter:
    def test_rebased_sorted_supervisor_first(self):
        lanes = spans_to_timeline([
            {"kind": "span", "lane": "worker-1-0", "pid": 1, "name": "b",
             "cat": "cell", "t0": 10.5, "t1": 11.0, "args": {}},
            {"kind": "span", "lane": "worker-1-0", "pid": 1, "name": "a",
             "cat": "cell", "t0": 10.5, "t1": 11.0, "args": {}},
            {"kind": "span", "lane": "supervisor-9", "pid": 9,
             "name": "sweep", "cat": "queue", "t0": 10.0, "t1": 12.0,
             "args": {}},
            {"not": "a span"},
        ])
        assert [lane.lane for lane in lanes] == [
            "supervisor-9", "worker-1-0",
        ]
        assert lanes[0].spans[0].t0 == 0.0  # rebased to the sweep start
        assert [s.name for s in lanes[1].spans] == ["a", "b"]
        assert lanes[0].is_supervisor and not lanes[1].is_supervisor

    def test_empty_input(self):
        assert spans_to_timeline([]) == []


class TestGoldenDeterminism:
    def test_two_renders_are_byte_identical(self, tmp_path):
        runs = build_fixture(str(tmp_path))
        out_a, out_b = str(tmp_path / "a"), str(tmp_path / "b")
        render_site(build_model(runs), out_a)
        render_site(build_model(runs), out_b)
        site_a, site_b = read_site(out_a), read_site(out_b)
        assert sorted(site_a) == sorted(
            name for name, _ in PAGES
        )
        assert site_a == site_b

    def test_byte_identical_across_hash_seeds(self, tmp_path):
        # PYTHONHASHSEED is fixed at interpreter start, so the cross-
        # seed leg of the golden test must run in subprocesses.
        runs = build_fixture(str(tmp_path))
        sites = {}
        for seed in ("1", "731"):
            out = str(tmp_path / f"site-{seed}")
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.path.dirname(
                os.path.dirname(os.path.abspath(repro.__file__))
            )
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "--runs-dir", runs,
                 "dash", "--out", out],
                capture_output=True, text=True, env=env, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            sites[seed] = read_site(out)
        assert sites["1"] == sites["731"]

    def test_cli_dash_reports_and_writes_no_record(self, tmp_path, capsys):
        runs = build_fixture(str(tmp_path))
        out = str(tmp_path / "site")
        names_before = sorted(os.listdir(runs))
        assert main(["--runs-dir", runs, "dash", "--out", out]) == 0
        assert sorted(os.listdir(runs)) == names_before
        text = capsys.readouterr().out
        assert "index.html" in text
        assert main([
            "--runs-dir", runs, "dash", "--out", out, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pages"] and payload["skipped_artifacts"] >= 1


class TestRenderedPanels:
    def site(self, tmp_path):
        runs = build_fixture(str(tmp_path))
        out = str(tmp_path / "site")
        render_site(build_model(runs), out)
        return {
            name: open(os.path.join(out, name), encoding="utf-8").read()
            for name in os.listdir(out)
        }

    def test_scorecard_page_scores_anchored_experiments(self, tmp_path):
        pages = self.site(tmp_path)
        assert "fig4" in pages["index.html"]
        assert "scorecard" in pages["index.html"].lower()

    def test_history_page_plots_metric_series(self, tmp_path):
        pages = self.site(tmp_path)
        assert "mpki.S-WordCount.l1d" in pages["history.html"]
        assert "<svg" in pages["history.html"]
        # bench.* experiments chart on the bench page, not here.
        assert "bench.uarch.trace-gen" not in pages["history.html"]

    def test_sweep_page_draws_lanes(self, tmp_path):
        pages = self.site(tmp_path)
        assert "golden" in pages["sweeps.html"]
        assert "supervisor-99" in pages["sweeps.html"]
        assert "worker-100-0" in pages["sweeps.html"]

    def test_profile_page_ranks_hot_functions(self, tmp_path):
        pages = self.site(tmp_path)
        assert "generate_fetch_trace" in pages["profiles.html"]

    def test_bench_page_charts_bench_records(self, tmp_path):
        pages = self.site(tmp_path)
        assert "bench.uarch.trace-gen" in pages["bench.html"]

    def test_health_page_surfaces_every_skip_and_finding(self, tmp_path):
        pages = self.site(tmp_path)
        health = pages["health.html"]
        assert "torn-record.json" in health
        assert "leaked.json.tmp.999" in health
        assert "corrupt-record" in health
        assert "torn-journal" in health
        # Nonzero drop/error counters are part of writer health.
        assert "stream_dropped_events" in health

    def test_history_html_export_uses_the_same_renderer(self, tmp_path):
        from repro.obs import RunRegistry, history

        runs = build_fixture(str(tmp_path))
        page = history(RunRegistry(runs), "fig4").to_html()
        assert "<svg" in page and "mpki.S-WordCount.l1d" in page
