"""Run registry, paper anchors and cross-run reporting."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.anchors import FAIL, PASS, WARN, Anchor, evaluate_record
from repro.obs.registry import (
    SCHEMA_VERSION,
    RunRecord,
    RunRegistry,
    build_provenance,
    flatten_rows,
)
from repro.obs.report import (
    diff_records,
    history,
    scorecard,
    sparkline,
)


def make_record(experiment="fig3", metrics=None, **provenance_overrides):
    provenance = build_provenance(
        experiment=experiment, seed=0, scale=0.3, platforms=["Xeon E5645"]
    )
    provenance.update(provenance_overrides)
    return RunRecord(
        experiment=experiment,
        kind="experiment",
        metrics=metrics if metrics is not None else {"bigdata.ipc": 1.3},
        provenance=provenance,
    )


class TestRunRecord:
    def test_round_trip(self):
        record = make_record(metrics={"a.b": 1.5, "c": 2.0})
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.experiment == record.experiment
        assert clone.metrics == record.metrics
        assert clone.provenance == record.provenance
        assert clone.schema_version == SCHEMA_VERSION

    def test_future_schema_rejected(self):
        data = make_record().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            RunRecord.from_dict(data)

    def test_provenance_fields_populated(self):
        provenance = make_record().provenance
        for field in ("git_sha", "seed", "scale", "platforms", "python",
                      "config_hash"):
            assert provenance[field] not in (None, "")
        assert provenance["seed"] == 0
        assert provenance["scale"] == 0.3

    def test_config_hash_is_deterministic_and_config_sensitive(self):
        a = build_provenance(experiment="e", seed=1, scale=0.5,
                             platforms=["P"])
        b = build_provenance(experiment="e", seed=1, scale=0.5,
                             platforms=["P"])
        c = build_provenance(experiment="e", seed=2, scale=0.5,
                             platforms=["P"])
        assert a["config_hash"] == b["config_hash"]
        assert a["config_hash"] != c["config_hash"]

    def test_flatten_rows_skips_non_numeric(self):
        metrics = flatten_rows(
            "w", ["name", "x", "label", "y"],
            [["A", 1.5, "CPU", 2], ["B", 0.25, "IO", True]],
        )
        assert metrics == {"w.A.x": 1.5, "w.A.y": 2.0, "w.B.x": 0.25}


class TestRegistry:
    def test_save_load_round_trip(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        record = make_record(metrics={"m": 1.0})
        path = registry.save(record)
        assert os.path.exists(path)
        assert record.run_id and record.created_at
        loaded = registry.load_path(path)
        assert loaded.metrics == {"m": 1.0}
        assert loaded.run_id == record.run_id

    def test_same_second_saves_get_distinct_ids(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        first, second = make_record(), make_record()
        second.created_at = first.created_at = "2026-01-01T00:00:00Z"
        registry.save(first)
        registry.save(second)
        assert first.run_id != second.run_id
        assert len(registry.records("fig3")) == 2

    def test_latest_and_resolve(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        old = make_record(metrics={"m": 1.0})
        old.created_at = "2026-01-01T00:00:00Z"
        new = make_record(metrics={"m": 2.0})
        new.created_at = "2026-01-02T00:00:00Z"
        registry.save(old)
        path = registry.save(new)
        assert registry.latest("fig3").metrics["m"] == 2.0
        assert registry.resolve("fig3").metrics["m"] == 2.0
        assert registry.resolve("fig3~1").metrics["m"] == 1.0
        assert registry.resolve(new.run_id).metrics["m"] == 2.0
        assert registry.resolve(path).metrics["m"] == 2.0
        with pytest.raises(KeyError):
            registry.resolve("nonesuch")
        with pytest.raises(KeyError):
            registry.resolve("fig3~9")

    def test_missing_dir_is_empty(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "nope"))
        assert registry.records() == []
        assert registry.latest("fig3") is None


class TestAnchors:
    def test_band_edges(self):
        anchor = Anchor("e", "m", 10.0, rel_tol=0.1, warn_factor=2.0)
        assert anchor.status(10.0) == PASS
        assert anchor.status(11.0) == PASS      # exactly on the band
        assert anchor.status(11.0001) == WARN   # just beyond
        assert anchor.status(12.0) == WARN      # exactly on the warn band
        assert anchor.status(12.0001) == FAIL
        assert anchor.status(None) == FAIL

    def test_abs_tol_dominates_for_small_references(self):
        anchor = Anchor("e", "m", 0.0, rel_tol=0.5, abs_tol=0.2)
        assert anchor.band == 0.2
        assert anchor.status(0.15) == PASS
        assert anchor.status(0.3) == WARN
        assert anchor.status(0.5) == FAIL

    def test_evaluate_record_flags_missing_metric(self):
        record = make_record(metrics={})
        checks = evaluate_record(record)
        assert checks and all(c.status == FAIL for c in checks)
        assert all(c.value is None for c in checks)


class TestDiff:
    def test_identical_records_are_clean(self):
        a = make_record(metrics={"x": 1.0, "y": 2.0})
        b = make_record(metrics={"x": 1.0, "y": 2.0})
        result = diff_records(a, b)
        assert result.clean
        assert result.exit_code == 0

    def test_drift_beyond_threshold(self):
        a = make_record(metrics={"x": 1.0})
        b = make_record(metrics={"x": 1.1})
        result = diff_records(a, b, rel_threshold=0.05)
        assert [d.metric for d in result.drifted] == ["x"]
        assert result.exit_code == 1

    def test_drift_within_threshold_is_clean(self):
        a = make_record(metrics={"x": 1.0})
        b = make_record(metrics={"x": 1.001})
        assert diff_records(a, b, rel_threshold=0.01).exit_code == 0

    def test_missing_metric_wins_over_drift(self):
        a = make_record(metrics={"x": 1.0, "gone": 3.0})
        b = make_record(metrics={"x": 99.0})
        result = diff_records(a, b)
        assert result.exit_code == 2
        assert [d.metric for d in result.missing] == ["gone"]

    def test_zero_baseline_to_nonzero_counts_as_drift(self):
        a = make_record(metrics={"x": 0.0})
        b = make_record(metrics={"x": 0.5})
        assert diff_records(a, b).exit_code == 1


class TestScorecardAndHistory:
    def test_scorecard_names_missing_experiments(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        card = scorecard(registry)
        assert not card.checks
        assert "fig1" in card.missing_experiments
        assert not card.ok

    def test_scorecard_scores_latest_record(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.save(make_record("fig3", metrics={"bigdata.ipc": 1.30}))
        card = scorecard(registry, experiments=["fig3"])
        by_metric = {c.anchor.metric: c for c in card.checks}
        assert by_metric["bigdata.ipc"].status == PASS
        rendered = card.render()
        assert "bigdata.ipc" in rendered and "pass" in rendered

    def test_history_series_and_sparkline(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        for day, value in (("01", 1.0), ("02", 2.0), ("03", 1.5)):
            record = make_record(metrics={"bigdata.ipc": value})
            record.created_at = f"2026-01-{day}T00:00:00Z"
            registry.save(record)
        result = history(registry, "fig3")
        assert result.series["bigdata.ipc"] == [1.0, 2.0, 1.5]
        assert len(sparkline([1.0, 2.0, 1.5])) == 3
        html = result.to_html()
        assert "<svg" in html and "bigdata.ipc" in html

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        assert len(set(sparkline([2.0, 2.0, 2.0]))) == 1


class TestCliVerbs:
    def _seed_registry(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        a = make_record(metrics={"bigdata.ipc": 1.30, "workload.X.ipc": 1.0})
        a.created_at = "2026-01-01T00:00:00Z"
        b = make_record(metrics={"bigdata.ipc": 1.30, "workload.X.ipc": 1.0})
        b.created_at = "2026-01-02T00:00:00Z"
        registry.save(a)
        registry.save(b)
        return registry, a, b

    def test_diff_clean_exit_zero(self, tmp_path, capsys):
        self._seed_registry(tmp_path)
        code = main(["--runs-dir", str(tmp_path), "diff", "fig3~1", "fig3"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_diff_drift_exit_one(self, tmp_path, capsys):
        registry, _, _ = self._seed_registry(tmp_path)
        drifted = make_record(metrics={"bigdata.ipc": 2.0,
                                       "workload.X.ipc": 1.0})
        drifted.created_at = "2026-01-03T00:00:00Z"
        registry.save(drifted)
        code = main(["--runs-dir", str(tmp_path), "diff", "fig3~2", "fig3"])
        assert code == 1
        assert "bigdata.ipc" in capsys.readouterr().out

    def test_diff_missing_metric_exit_two(self, tmp_path, capsys):
        registry, _, _ = self._seed_registry(tmp_path)
        dropped = make_record(metrics={"bigdata.ipc": 1.30})
        dropped.created_at = "2026-01-03T00:00:00Z"
        registry.save(dropped)
        code = main(["--runs-dir", str(tmp_path), "diff", "fig3~2", "fig3"])
        assert code == 2

    def test_diff_unknown_ref_exit_three(self, tmp_path, capsys):
        code = main(["--runs-dir", str(tmp_path), "diff", "a", "b"])
        assert code == 3

    def test_diff_json(self, tmp_path, capsys):
        self._seed_registry(tmp_path)
        code = main(
            ["--runs-dir", str(tmp_path), "diff", "fig3~1", "fig3", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["compared"] == 2

    def test_report_json_and_strict(self, tmp_path, capsys):
        registry = RunRegistry(str(tmp_path))
        registry.save(make_record("fig3", metrics={"bigdata.ipc": 1.30}))
        code = main(
            ["--runs-dir", str(tmp_path), "report",
             "--experiments", "fig3", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        statuses = {c["metric"]: c["status"] for c in payload["checks"]}
        assert statuses["bigdata.ipc"] == "pass"
        # strict mode fails when anchored experiments have no records
        assert main(["--runs-dir", str(tmp_path), "report", "--strict"]) == 1

    def test_history_cli_json_and_html(self, tmp_path, capsys):
        self._seed_registry(tmp_path)
        assert main(
            ["--runs-dir", str(tmp_path), "history", "fig3", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["series"]["bigdata.ipc"] == [1.3, 1.3]
        out = tmp_path / "hist.html"
        assert main(
            ["--runs-dir", str(tmp_path), "history", "fig3",
             "--html", "--out", str(out)]
        ) == 0
        assert "<svg" in out.read_text()


class TestEndToEndDeterminism:
    def test_identical_seed_reruns_diff_clean(self, tmp_path, capsys):
        """Same seed + scale => identical metric payloads (timestamps aside)."""
        runs = str(tmp_path / "runs")
        for _ in range(2):
            assert main(
                ["--scale", "0.2", "--runs-dir", runs,
                 "run", "H-Grep", "--seed", "5"]
            ) == 0
        capsys.readouterr()
        assert main(
            ["--runs-dir", runs, "diff", "run.H-Grep~1", "run.H-Grep"]
        ) == 0
        records = RunRegistry(runs).records("run.H-Grep")
        assert len(records) == 2
        assert records[0].metrics == records[1].metrics
        assert records[0].run_id != records[1].run_id

    def test_perturbed_platform_rerun_drifts(self, tmp_path, capsys):
        """A perturbed platform parameter must trip the regression gate."""
        runs = str(tmp_path / "runs")
        assert main(
            ["--scale", "0.2", "--runs-dir", runs,
             "run", "H-Grep", "--seed", "5"]
        ) == 0
        assert main(
            ["--scale", "0.2", "--runs-dir", runs,
             "run", "H-Grep", "--seed", "5", "--platform", "d510"]
        ) == 0
        capsys.readouterr()
        code = main(
            ["--runs-dir", runs, "diff", "run.H-Grep~1", "run.H-Grep"]
        )
        assert code != 0

    def test_no_record_suppresses_registry_write(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        assert main(
            ["--scale", "0.2", "--runs-dir", runs, "--no-record",
             "run", "H-Grep"]
        ) == 0
        assert not os.path.isdir(runs) or not os.listdir(runs)
