"""Tests for the hardware prefetcher models."""

import numpy as np
import pytest

from repro.uarch.cache import CacheConfig, SetAssociativeCache
from repro.uarch.prefetch import (
    NextLinePrefetcher,
    StridePrefetcher,
    run_with_prefetcher,
)


def small_cache():
    return SetAssociativeCache(CacheConfig("L1D", 8 * 1024, ways=4))


def sequential_trace(n=2000, start=0):
    return list(range(start, start + n))


def strided_trace(n=2000, stride=4):
    return [i * stride for i in range(n)]


def random_trace(n=2000, span=100_000, seed=5):
    rng = np.random.default_rng(seed)
    return rng.integers(0, span, size=n).tolist()


class TestNextLinePrefetcher:
    def test_covers_sequential_stream(self):
        baseline = run_with_prefetcher(small_cache(), sequential_trace(), None)
        prefetched = NextLinePrefetcher(small_cache(), degree=2).run(
            sequential_trace()
        )
        assert prefetched.demand_misses < 0.6 * baseline.demand_misses

    def test_useless_on_random(self):
        stats = NextLinePrefetcher(small_cache()).run(random_trace())
        assert stats.accuracy < 0.2

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(small_cache(), degree=0)


class TestStridePrefetcher:
    def test_learns_nonunit_stride(self):
        baseline = run_with_prefetcher(
            small_cache(), strided_trace(stride=4), None
        )
        prefetched = StridePrefetcher(small_cache(), degree=2).run(
            strided_trace(stride=4)
        )
        assert prefetched.demand_misses < 0.7 * baseline.demand_misses
        assert prefetched.accuracy > 0.5

    def test_sequential_also_covered(self):
        stats = StridePrefetcher(small_cache(), degree=2).run(
            sequential_trace()
        )
        assert stats.miss_ratio < 0.5

    def test_no_progress_on_random(self):
        stats = StridePrefetcher(small_cache()).run(random_trace())
        baseline = run_with_prefetcher(small_cache(), random_trace(), None)
        # Must not make things dramatically worse either.
        assert stats.demand_misses <= baseline.demand_misses * 1.1


class TestRunWithPrefetcher:
    def test_none_is_plain_cache(self):
        stats = run_with_prefetcher(small_cache(), sequential_trace(500), None)
        assert stats.demand_accesses == 500
        assert stats.prefetches_issued == 0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            run_with_prefetcher(small_cache(), [1], "psychic")
