"""The tutorial's running example must actually work as documented."""

import pytest

from repro.cluster import Cluster
from repro.core import Wcrt
from repro.stacks.base import KernelTraits, WorkloadResult
from repro.stacks.spark import Spark
from repro.uarch import XEON_E5645, characterize
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import (
    ApplicationCategory,
    DataBehavior,
    SystemBehavior,
    WorkloadDefinition,
    classify_system_behavior,
)
from repro.workloads.kernels import wiki_documents

DISTINCT_KERNEL = KernelTraits(
    code_kb=12.0,
    ilp=2.2,
    loop_fraction=0.35,
    pattern_fraction=0.10,
    data_dependent_fraction=0.55,
    taken_prob=0.05,
    loop_trip=40,
    state_zipf=0.85,
)


def spark_distinct(scale=1.0, cluster=None, seed=0) -> WorkloadResult:
    spark = Spark()
    docs = spark.parallelize(wiki_documents(scale, seed))

    def to_words(doc):
        return [(word, None) for word in doc.split()]

    def meter_doc(doc, meter):
        words = doc.count(" ") + 1
        meter.ops(str_byte=len(doc), hash=words, compare=words)

    distinct = docs.flat_map(to_words, meter_doc).reduce_by_key(lambda a, b: a)
    count = len(distinct.collect())
    return spark.finish(
        name="S-Distinct",
        output=count,
        kernel=DISTINCT_KERNEL,
        state_bytes=96 * count,
        state_fraction=0.03,
        cluster=cluster,
    )


class TestTutorialWorkload:
    def test_distinct_count_is_correct(self):
        docs = wiki_documents(0.25, seed=0)
        expected = len({word for doc in docs for word in doc.split()})
        assert spark_distinct(scale=0.25).output == expected

    def test_characterizes(self):
        result = spark_distinct(scale=0.25)
        counters = characterize(result.profile, XEON_E5645)
        assert 0 < counters.ipc < 4
        assert counters.l1i_mpki > 1  # JVM stack footprint is visible

    def test_classifies(self):
        cluster = Cluster(n_nodes=5)
        result = spark_distinct(scale=0.25, cluster=cluster)
        behavior = classify_system_behavior(
            result.system.cpu_utilization,
            result.system.io_wait_ratio,
            result.system.weighted_io_time_ratio,
        )
        assert behavior in SystemBehavior
        assert "Output" in DataBehavior.from_meter(result.meter).describe()

    @pytest.mark.slow
    def test_lands_in_a_spark_text_cluster(self):
        mine = WorkloadDefinition(
            workload_id="S-Distinct",
            description="Spark distinct count over Wikipedia",
            stack="Spark",
            dataset="wikipedia",
            category=ApplicationCategory.DATA_ANALYSIS,
            expected_system_behavior=SystemBehavior.IO_INTENSIVE,
            runner=spark_distinct,
        )
        # A focused population keeps this affordable: the Spark text
        # workloads plus contrasting stacks.
        ids = {
            "S-WordCount", "S-Index", "S-Grep", "H-WordCount", "H-Grep",
            "M-WordCount", "H-Read", "I-SelectQuery", "S-Kmeans",
        }
        population = [d for d in ALL_WORKLOADS if d.workload_id in ids]
        from repro.workloads import MPI_WORKLOADS

        population += [d for d in MPI_WORKLOADS if d.workload_id == "M-WordCount"]
        reduction = Wcrt(n_profilers=2, scale=0.3).reduce(
            population + [mine], k=5
        )
        home = reduction.cluster_of("S-Distinct")
        members = reduction.clusters[home]
        # It must cluster with the Spark text-processing family, not
        # with the service or MPI workloads.
        assert any(m.startswith("S-") for m in members if m != "S-Distinct")
        assert "H-Read" not in members
