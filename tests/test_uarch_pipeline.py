"""Tests for TLBs, platforms, the pipeline model and counters."""

import math

import pytest

from repro.uarch import (
    ATOM_D510,
    XEON_E5645,
    BehaviorProfile,
    BranchProfile,
    CodeFootprint,
    CodeRegion,
    DataFootprint,
    characterize,
)
from repro.uarch.branch import BranchStats
from repro.uarch.counters import METRIC_NAMES
from repro.uarch.isa import InstructionMix, IntBreakdown
from repro.uarch.pipeline import estimate_mlp, model_pipeline
from repro.uarch.tlb import Tlb, TlbConfig, lines_to_pages


def make_profile(name="toy", ilp=2.0, state_fraction=0.05, **branch_overrides):
    branch_kwargs = dict(
        loop_fraction=0.4, pattern_fraction=0.1, data_dependent_fraction=0.5,
        taken_prob=0.04, static_sites=512,
    )
    branch_kwargs.update(branch_overrides)
    return BehaviorProfile(
        name=name,
        mix=InstructionMix.from_ratios(
            1e8, load=0.26, store=0.11, branch=0.19, integer=0.38,
            fp=0.02, other=0.04,
        ),
        int_breakdown=IntBreakdown(0.64, 0.18, 0.18),
        code=CodeFootprint(
            [
                CodeRegion("kernel", 16 * 1024, weight=0.85, sequentiality=8),
                CodeRegion("framework", 256 * 1024, weight=0.15, sequentiality=4),
            ]
        ),
        data=DataFootprint(
            stream_bytes=4 * 1024 * 1024,
            state_bytes=1024 * 1024,
            state_fraction=state_fraction,
            hot_bytes=16 * 1024,
            hot_fraction=0.9 - state_fraction,
        ),
        branches=BranchProfile(**branch_kwargs),
        ilp=ilp,
        instructions=1e8,
        fp_ops=1e5,
        bytes_processed=1e7,
        threads=6,
    )


class TestTlb:
    def test_hit_miss(self):
        tlb = Tlb(TlbConfig("DTLB", entries=16, ways=4))
        assert tlb.access(3) is False
        assert tlb.access(3) is True

    def test_capacity(self):
        tlb = Tlb(TlbConfig("DTLB", entries=8, ways=8))
        for page in range(9):
            tlb.access(page)
        assert tlb.access(0) is False  # evicted

    def test_mpki(self):
        tlb = Tlb(TlbConfig("ITLB", entries=8, ways=4))
        tlb.access(1)
        assert tlb.mpki(1000) == 1.0

    def test_lines_to_pages(self):
        assert list(lines_to_pages([0, 64, 65])) == [0, 1, 1]


class TestPlatforms:
    def test_xeon_config_matches_table3(self):
        assert XEON_E5645.cores == 6
        assert XEON_E5645.frequency_ghz == 2.40
        assert XEON_E5645.l1i.size_bytes == 32 * 1024
        assert XEON_E5645.l1d.size_bytes == 32 * 1024
        assert XEON_E5645.l2.size_bytes == 256 * 1024
        assert XEON_E5645.l3.size_bytes == 12 * 1024 * 1024
        assert XEON_E5645.peak_gflops == 57.6

    def test_atom_config_matches_table4(self):
        assert ATOM_D510.branch_penalty == 15.0
        assert not ATOM_D510.out_of_order
        assert ATOM_D510.l3 is None

    def test_fresh_components(self):
        a = XEON_E5645.make_hierarchy()
        b = XEON_E5645.make_hierarchy()
        assert a is not b
        assert XEON_E5645.make_predictor() is not XEON_E5645.make_predictor()


class TestPipelineModel:
    def test_mlp_in_order_is_one(self):
        assert estimate_mlp(make_profile(), ATOM_D510) == 1.0

    def test_mlp_grows_with_ilp(self):
        low = estimate_mlp(make_profile(ilp=1.2), XEON_E5645)
        high = estimate_mlp(make_profile(ilp=3.0), XEON_E5645)
        assert high > low

    def test_more_mispredictions_lower_ipc(self):
        profile = make_profile()
        hierarchy = XEON_E5645.make_hierarchy()
        good = model_pipeline(
            profile, XEON_E5645, hierarchy,
            BranchStats(10_000, 100, 0, 0.0), 0, 0, 100_000,
        )
        bad = model_pipeline(
            profile, XEON_E5645, hierarchy,
            BranchStats(10_000, 2_000, 0, 0.0), 0, 0, 100_000,
        )
        assert bad.ipc < good.ipc

    def test_stall_ratios_sum_below_one(self):
        profile = make_profile()
        hierarchy = XEON_E5645.make_hierarchy()
        hierarchy.fetch_fills["l2"] = 500
        hierarchy.data_fills["l3"] = 300
        stats = model_pipeline(
            profile, XEON_E5645, hierarchy,
            BranchStats(19_000, 400, 50, 0.1), 10, 20, 100_000,
        )
        total = (
            stats.frontend_stall_ratio
            + stats.branch_stall_ratio
            + stats.backend_stall_ratio
        )
        assert 0.0 < total < 1.0
        assert math.isclose(stats.ipc, 1.0 / stats.cpi)

    def test_requires_positive_instructions(self):
        with pytest.raises(ValueError):
            model_pipeline(
                make_profile(), XEON_E5645, XEON_E5645.make_hierarchy(),
                BranchStats(0, 0, 0, 0.0), 0, 0, 0,
            )


class TestCharacterize:
    def test_produces_all_45_metrics(self):
        counters = characterize(make_profile(), XEON_E5645, seed=5)
        metrics = counters.metric_dict()
        assert len(METRIC_NAMES) == 45
        assert set(metrics) == set(METRIC_NAMES)
        assert all(math.isfinite(v) for v in metrics.values())

    def test_metric_vector_order(self):
        counters = characterize(make_profile(), XEON_E5645, seed=5)
        vector = counters.metric_vector()
        metrics = counters.metric_dict()
        assert vector.shape == (45,)
        assert vector[METRIC_NAMES.index("ipc")] == pytest.approx(metrics["ipc"])

    def test_deterministic_given_seed(self):
        a = characterize(make_profile(), XEON_E5645, seed=9)
        b = characterize(make_profile(), XEON_E5645, seed=9)
        assert a.metric_vector() == pytest.approx(b.metric_vector())

    def test_bigger_footprint_more_l1i_misses(self):
        small = make_profile()
        big = make_profile()
        big.code = CodeFootprint(
            [
                CodeRegion("kernel", 16 * 1024, weight=0.4, sequentiality=8),
                CodeRegion("framework", 1024 * 1024, weight=0.6, sequentiality=4),
            ]
        )
        small_counters = characterize(small, XEON_E5645, seed=4)
        big_counters = characterize(big, XEON_E5645, seed=4)
        assert big_counters.l1i_mpki > small_counters.l1i_mpki

    def test_ipc_within_machine_limits(self):
        counters = characterize(make_profile(ilp=3.5), XEON_E5645, seed=2)
        assert 0.0 < counters.ipc <= XEON_E5645.issue_width

    def test_atom_has_no_l3_metrics(self):
        counters = characterize(make_profile(), ATOM_D510, seed=2)
        assert counters.l3_mpki == 0.0

    def test_rejects_bad_sample_size(self):
        with pytest.raises(ValueError):
            characterize(make_profile(), XEON_E5645, sample_instructions=0)
