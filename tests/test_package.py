"""Package-level hygiene: exports, versioning, documentation coverage."""

import importlib
import pkgutil

import repro

PUBLIC_MODULES = [
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
]


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        assert len(repro.ALL_WORKLOADS) == 77
        assert callable(repro.characterize)
        assert repro.XEON_E5645.cores == 6

    def test_all_modules_import(self):
        for name in PUBLIC_MODULES:
            importlib.import_module(name)

    def test_every_module_documented(self):
        undocumented = []
        for name in PUBLIC_MODULES:
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                undocumented.append(name)
        assert undocumented == []

    def test_public_classes_documented(self):
        undocumented = []
        for name in PUBLIC_MODULES:
            module = importlib.import_module(name)
            for attr_name in dir(module):
                if attr_name.startswith("_"):
                    continue
                attr = getattr(module, attr_name)
                if isinstance(attr, type) and attr.__module__ == name:
                    if not (attr.__doc__ or "").strip():
                        undocumented.append(f"{name}.{attr_name}")
        assert undocumented == []

    def test_metric_name_count_is_45(self):
        from repro.uarch.counters import METRIC_NAMES

        assert len(METRIC_NAMES) == 45
        assert len(set(METRIC_NAMES)) == 45
