"""The noise-aware bench harness and the CI perf gate.

Covers the three layers separately: the pure robust statistics
(:mod:`repro.obs.stats`), the timing harness with an injected fake
timer (:func:`repro.obs.perf.run_bench`), and the budget gate
(:func:`repro.obs.perf.perfdiff`) — plus one real micro-kernel bench
to pin the ``kind="bench"`` record schema end to end.
"""

import json

import pytest

from repro.cli import main
from repro.errors import BudgetManifestError, PerfError
from repro.obs import RunRegistry
from repro.obs.perf import (
    BENCH_RECORD_SCHEMA,
    BUDGET_SCHEMA_VERSION,
    BenchTarget,
    bench_experiment,
    bench_targets,
    load_budgets,
    obs_overhead_record,
    perfdiff,
    run_bench,
    stats_from_timings,
    update_budgets,
)
from repro.obs.stats import (
    bootstrap_ci_median,
    intervals_separated,
    mad,
    median,
    robust_summary,
)


class TestRobustStats:
    def test_median_odd_and_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_mad_known_values(self):
        # values 1..5: median 3, |v-3| = [2,1,0,1,2], MAD = 1
        assert mad([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0
        assert mad([7.0, 7.0, 7.0]) == 0.0

    def test_bootstrap_ci_is_deterministic(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95]
        assert bootstrap_ci_median(values) == bootstrap_ci_median(values)
        lo, hi = bootstrap_ci_median(values)
        assert min(values) <= lo <= hi <= max(values)

    def test_bootstrap_single_sample_is_point_interval(self):
        assert bootstrap_ci_median([2.5]) == (2.5, 2.5)

    def test_intervals_separated(self):
        assert intervals_separated((0.0, 1.0), (2.0, 3.0))
        assert intervals_separated((2.0, 3.0), (0.0, 1.0))
        assert not intervals_separated((0.0, 1.5), (1.0, 2.0))

    def test_robust_summary_fields(self):
        stats = robust_summary([2.0, 1.0, 3.0])
        assert stats.n == 3
        assert stats.median == 2.0
        assert stats.min == 1.0 and stats.max == 3.0
        assert stats.ci_lo <= stats.median <= stats.ci_hi
        payload = stats.to_dict()
        assert payload["median"] == 2.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            robust_summary([])


def fake_timer(step=0.5):
    """A deterministic monotonic clock advancing ``step`` per call."""
    state = {"t": 0.0}

    def tick():
        state["t"] += step
        return state["t"]

    return tick


def make_target(payload=None, name="toy"):
    payloads = payload if payload is not None else {"x": 1.0}

    def factory(scale, seed):
        calls = {"n": 0}

        def run():
            calls["n"] += 1
            if isinstance(payloads, list):
                return payloads[min(calls["n"] - 1, len(payloads) - 1)]
            return dict(payloads)

        return run

    return BenchTarget(name, "toy target", "micro", factory)


class TestRunBench:
    def test_fake_timer_yields_exact_stats(self):
        result = run_bench(
            make_target(), reps=3, warmup=2, scale=0.1, seed=0,
            timer=fake_timer(0.5),
        )
        # Each rep spans exactly one tick: 0.5s per sample.
        assert result.samples_s == [0.5, 0.5, 0.5]
        assert result.stats.median == 0.5
        assert result.stats.mad == 0.0
        assert result.metrics == {"x": 1.0}

    def test_record_schema(self):
        result = run_bench(
            make_target(), reps=2, warmup=0, scale=0.1, seed=7,
            timer=fake_timer(),
        )
        record = result.to_record()
        assert record.experiment == "bench.toy"
        assert record.kind == "bench"
        assert record.metrics == {"x": 1.0}
        # Every wall-clock number is quarantined under bench.*.
        assert not any(k.startswith("bench.") for k in record.metrics)
        timings = record.timings
        assert timings["bench.schema"] == float(BENCH_RECORD_SCHEMA)
        assert timings["bench.reps"] == 2.0
        for key in ("bench.median_s", "bench.mad_s", "bench.ci_lo_s",
                    "bench.ci_hi_s", "bench.rep_s.0", "bench.rep_s.1"):
            assert key in timings
        assert record.series["bench"]["target"] == "toy"
        assert record.series["bench"]["target_kind"] == "micro"
        assert record.provenance["scale"] == 0.1

    def test_nondeterministic_payload_is_refused(self):
        flaky = make_target(payload=[{"x": 1.0}, {"x": 2.0}])
        with pytest.raises(PerfError):
            run_bench(flaky, reps=2, warmup=0, timer=fake_timer())

    def test_unknown_target_and_bad_reps(self):
        with pytest.raises(PerfError):
            run_bench("no-such-target", timer=fake_timer())
        with pytest.raises(PerfError):
            run_bench(make_target(), reps=0, timer=fake_timer())
        with pytest.raises(PerfError):
            run_bench(make_target(), warmup=-1, timer=fake_timer())

    def test_catalogue_names_every_paper_verb(self):
        targets = bench_targets()
        for name in ("fig1", "fig4", "table2", "locality",
                     "uarch.characterize", "uarch.trace-gen"):
            assert name in targets
        assert bench_experiment("fig4") == "bench.fig4"

    def test_real_micro_kernel_round_trip(self):
        # One real inner-loop kernel at tiny scale: the record's
        # metrics are the kernel's deterministic payload.
        a = run_bench("uarch.trace-gen", reps=2, warmup=0, scale=0.1, seed=0)
        b = run_bench("uarch.trace-gen", reps=2, warmup=0, scale=0.1, seed=0)
        assert a.metrics and a.metrics == b.metrics
        record = a.to_record()
        assert record.kind == "bench"
        assert record.metrics["trace.fetch_lines"] > 0


class TestObsOverheadRecord:
    def test_ratio_quarantined_in_timings(self):
        record = obs_overhead_record(
            untraced_s=2.0, traced_s=3.0, scale=0.2, seed=0
        )
        assert record.experiment == "bench.obs-overhead"
        assert record.kind == "bench"
        assert record.metrics == {}
        assert record.timings["bench.overhead_ratio"] == 1.5
        assert record.timings["bench.untraced_s"] == 2.0
        assert record.series["bench"]["target"] == "obs-overhead"


def bench_into(tmp_path, *, slowdown=1.0, name="toy"):
    """Record one fake-timer bench into a registry under tmp_path."""
    registry = RunRegistry(str(tmp_path / "runs"))
    result = run_bench(
        make_target(name=name), reps=3, warmup=0, scale=0.1, seed=0,
        timer=fake_timer(0.5 * slowdown),
    )
    registry.save(result.to_record())
    return registry


class TestPerfGate:
    def test_identical_rerun_exits_zero(self, tmp_path):
        registry = bench_into(tmp_path)
        budgets = str(tmp_path / "budgets.json")
        update_budgets(registry, budgets, targets=["toy"])
        manifest = load_budgets(budgets)
        result = perfdiff(registry, manifest, budgets_path=budgets)
        assert [v.status for v in result.verdicts] == ["ok"]
        assert result.exit_code == 0

    def test_separated_slowdown_is_a_regression(self, tmp_path):
        registry = bench_into(tmp_path)
        budgets = str(tmp_path / "budgets.json")
        update_budgets(registry, budgets, targets=["toy"])
        # Re-bench 2x slower: the fake timer makes both CIs points, so
        # the intervals separate and the gate must fail.
        bench_into(tmp_path, slowdown=2.0)
        manifest = load_budgets(budgets)
        result = perfdiff(registry, manifest, budgets_path=budgets)
        assert [v.status for v in result.verdicts] == ["regression"]
        assert result.exit_code == 1
        assert result.verdicts[0].ratio == pytest.approx(2.0)

    def test_speedup_is_flagged_faster_not_failing(self, tmp_path):
        registry = bench_into(tmp_path)
        budgets = str(tmp_path / "budgets.json")
        update_budgets(registry, budgets, targets=["toy"])
        bench_into(tmp_path, slowdown=0.5)
        result = perfdiff(
            registry, load_budgets(budgets), budgets_path=budgets
        )
        assert [v.status for v in result.verdicts] == ["faster"]
        assert result.exit_code == 0

    def test_missing_record_never_fails_the_gate(self, tmp_path):
        registry = bench_into(tmp_path)
        budgets = str(tmp_path / "budgets.json")
        update_budgets(registry, budgets, targets=["toy"])
        empty = RunRegistry(str(tmp_path / "other-runs"))
        result = perfdiff(
            empty, load_budgets(budgets), budgets_path=budgets
        )
        assert [v.status for v in result.verdicts] == ["no-record"]
        assert result.exit_code == 0

    def test_scale_mismatch_is_incomparable(self, tmp_path):
        registry = bench_into(tmp_path)
        budgets = str(tmp_path / "budgets.json")
        update_budgets(registry, budgets, targets=["toy"])
        manifest = load_budgets(budgets)
        manifest["budgets"]["toy"]["scale"] = 0.9
        result = perfdiff(registry, manifest, budgets_path=budgets)
        assert [v.status for v in result.verdicts] == ["incomparable"]
        assert result.exit_code == 0

    def test_manifest_validation(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        with pytest.raises(BudgetManifestError):
            load_budgets(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{ nope", encoding="utf-8")
        with pytest.raises(BudgetManifestError):
            load_budgets(str(bad))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(
            json.dumps({"schema_version": 99, "budgets": {}}),
            encoding="utf-8",
        )
        with pytest.raises(BudgetManifestError):
            load_budgets(str(wrong))
        assert BUDGET_SCHEMA_VERSION == 1

    def test_stats_from_timings_requires_ci(self):
        assert stats_from_timings({"bench.median_s": 1.0}) is None
        stats = stats_from_timings({
            "bench.median_s": 1.0, "bench.ci_lo_s": 0.9,
            "bench.ci_hi_s": 1.1, "bench.reps": 3.0,
        })
        assert stats["reps"] == 3

    def test_update_budgets_preserves_annotations(self, tmp_path):
        registry = bench_into(tmp_path)
        budgets = str(tmp_path / "budgets.json")
        update_budgets(registry, budgets, targets=["toy"])
        manifest = load_budgets(budgets)
        manifest["budgets"]["toy"]["hot_functions"] = ["run"]
        manifest["budgets"]["toy"]["note"] = "hand-written"
        with open(budgets, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        update_budgets(registry, budgets, targets=["toy"])
        reloaded = load_budgets(budgets)
        assert reloaded["budgets"]["toy"]["hot_functions"] == ["run"]
        assert reloaded["budgets"]["toy"]["note"] == "hand-written"


class TestBenchCli:
    def test_bench_records_and_perfdiff_round_trip(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        budgets = str(tmp_path / "budgets.json")
        assert main([
            "--runs-dir", runs, "--scale", "0.1", "bench",
            "uarch.trace-gen", "--reps", "2", "--warmup", "0",
        ]) == 0
        records = RunRegistry(runs).records("bench.uarch.trace-gen")
        assert len(records) == 1
        assert records[0].kind == "bench"
        assert "bench.median_s" in records[0].timings
        assert main([
            "--runs-dir", runs, "perfdiff", "--budgets", budgets,
            "--update-budgets",
        ]) == 0
        assert main([
            "--runs-dir", runs, "perfdiff", "--budgets", budgets,
        ]) == 0
        capsys.readouterr()

    def test_bench_unknown_target_is_a_usage_error(self, tmp_path, capsys):
        assert main(
            ["--runs-dir", str(tmp_path / "r"), "bench", "nope"]
        ) == 2
        capsys.readouterr()

    def test_bench_list_needs_no_target(self, tmp_path, capsys):
        assert main(
            ["--runs-dir", str(tmp_path / "r"), "bench", "--list"]
        ) == 0
        out = capsys.readouterr().out
        assert "uarch.trace-gen" in out

    def test_perfdiff_missing_manifest_is_a_usage_error(
        self, tmp_path, capsys
    ):
        assert main([
            "--runs-dir", str(tmp_path / "r"), "perfdiff",
            "--budgets", str(tmp_path / "nope.json"),
        ]) == 2
        capsys.readouterr()

    def test_perfdiff_warn_only_masks_regressions(self, tmp_path, capsys):
        registry = bench_into(tmp_path)
        budgets = str(tmp_path / "budgets.json")
        update_budgets(registry, budgets, targets=["toy"])
        bench_into(tmp_path, slowdown=2.0)
        runs = str(tmp_path / "runs")
        assert main([
            "--runs-dir", runs, "perfdiff", "--budgets", budgets,
        ]) == 1
        assert main([
            "--runs-dir", runs, "perfdiff", "--budgets", budgets,
            "--warn-only",
        ]) == 0
        out = capsys.readouterr().out
        assert "::warning" in out
