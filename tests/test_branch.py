"""Tests for branch predictors and the branch stream generator."""

import pytest

from repro.uarch.branch import (
    BranchEvent,
    BranchOutcome,
    BranchStreamGenerator,
    BranchTargetBuffer,
    HybridPredictor,
    LocalHistoryPredictor,
    LoopPredictor,
    SaturatingCounterTable,
    SimplePredictor,
    simulate_branches,
)
from repro.uarch.profile import BranchProfile


class TestSaturatingCounterTable:
    def test_initial_prediction_weakly_taken(self):
        table = SaturatingCounterTable(16)
        assert table.predict(0) is True

    def test_training_not_taken(self):
        table = SaturatingCounterTable(16)
        table.update(3, False)
        table.update(3, False)
        assert table.predict(3) is False

    def test_saturation(self):
        table = SaturatingCounterTable(16)
        for _ in range(10):
            table.update(1, True)
        table.update(1, False)
        assert table.predict(1) is True  # one not-taken cannot flip saturated

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            SaturatingCounterTable(12)


class TestBranchTargetBuffer:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(16, ways=4)
        assert btb.lookup(100) is None
        btb.update(100, 200)
        assert btb.lookup(100) == 200

    def test_capacity_eviction(self):
        btb = BranchTargetBuffer(4, ways=4)  # one set of 4
        for pc in range(5):
            btb.update(pc * 1024, pc)
        hits = sum(btb.lookup(pc * 1024) is not None for pc in range(5))
        assert hits <= 4


class TestLoopPredictor:
    def test_learns_fixed_trip_count(self):
        predictor = LoopPredictor()
        pc = 0x100
        trip = 5
        # Two full loop executions teach the trip count.
        for _iteration in range(2):
            for i in range(trip):
                predictor.update(pc, taken=i < trip - 1)
        # Third execution should be predicted perfectly.
        for i in range(trip):
            expected = i < trip - 1
            assert predictor.predict(pc) == expected
            predictor.update(pc, taken=expected)

    def test_unknown_pc_returns_none(self):
        assert LoopPredictor().predict(0x42) is None


class TestLocalHistoryPredictor:
    def test_learns_periodic_pattern(self):
        predictor = LocalHistoryPredictor()
        pc = 0x200
        pattern = [True, True, False, True]
        for _ in range(40):
            for outcome in pattern:
                predictor.update(pc, outcome)
        mistakes = 0
        for _ in range(5):
            for outcome in pattern:
                if predictor.predict(pc) != outcome:
                    mistakes += 1
                predictor.update(pc, outcome)
        assert mistakes <= 2


class TestPredictorsOnStreams:
    def run_mix(self, predictor_cls, profile, n=12_000, seed=5):
        generator = BranchStreamGenerator(profile, seed=seed)
        predictor = predictor_cls()
        simulate_branches(generator.generate(n), predictor)  # warm
        return simulate_branches(generator.generate(n), predictor)

    def test_hybrid_beats_simple_on_bigdata_mix(self):
        profile = BranchProfile(
            loop_fraction=0.40, pattern_fraction=0.10,
            data_dependent_fraction=0.50, taken_prob=0.04,
            loop_trip=24, indirect_fraction=0.04, indirect_targets=4,
            static_sites=2048,
        )
        hybrid = self.run_mix(HybridPredictor, profile)
        simple = self.run_mix(SimplePredictor, profile)
        assert hybrid.misprediction_ratio < simple.misprediction_ratio
        # Paper: 2.8% vs 7.8% — require the same order-of-2-4x gap.
        assert simple.misprediction_ratio > 1.5 * hybrid.misprediction_ratio

    def test_loops_are_highly_predictable_on_hybrid(self):
        profile = BranchProfile(
            loop_fraction=1.0, pattern_fraction=0.0,
            data_dependent_fraction=0.0, loop_trip=32,
            indirect_fraction=0.0, static_sites=128,
        )
        stats = self.run_mix(HybridPredictor, profile)
        assert stats.misprediction_ratio < 0.05

    def test_random_branches_bound_by_bias(self):
        profile = BranchProfile(
            loop_fraction=0.0, pattern_fraction=0.0,
            data_dependent_fraction=1.0, taken_prob=0.10,
            indirect_fraction=0.0, static_sites=256,
        )
        stats = self.run_mix(HybridPredictor, profile)
        # Cannot beat the Bernoulli bias, should not be far worse either.
        assert 0.05 < stats.misprediction_ratio < 0.25

    def test_misfetch_counted_separately(self):
        profile = BranchProfile(
            loop_fraction=1.0, pattern_fraction=0.0,
            data_dependent_fraction=0.0, loop_trip=16,
            indirect_fraction=0.0, static_sites=2048,
        )
        stats = self.run_mix(SimplePredictor, profile)
        assert stats.misfetches > 0
        assert stats.branches == 12_000

    def test_mispredictions_pki(self):
        stats = self.run_mix(
            HybridPredictor,
            BranchProfile(
                loop_fraction=0.5, pattern_fraction=0.2,
                data_dependent_fraction=0.3, static_sites=64,
            ),
            n=2000,
        )
        assert stats.mispredictions_pki(10_000) == pytest.approx(
            stats.mispredictions / 10.0
        )


class TestBranchStreamGenerator:
    def test_determinism(self):
        profile = BranchProfile(
            loop_fraction=0.4, pattern_fraction=0.2,
            data_dependent_fraction=0.4, static_sites=128,
        )
        a = BranchStreamGenerator(profile, seed=9).generate(500)
        b = BranchStreamGenerator(profile, seed=9).generate(500)
        assert a == b

    def test_event_count(self):
        profile = BranchProfile(
            loop_fraction=0.4, pattern_fraction=0.2,
            data_dependent_fraction=0.4, static_sites=128,
        )
        events = BranchStreamGenerator(profile, seed=1).generate(321)
        assert len(events) == 321

    def test_indirect_fraction_respected(self):
        profile = BranchProfile(
            loop_fraction=0.4, pattern_fraction=0.2,
            data_dependent_fraction=0.4, indirect_fraction=0.25,
            static_sites=128,
        )
        events = BranchStreamGenerator(profile, seed=2).generate(4000)
        indirect = sum(e.is_indirect for e in events)
        assert 0.18 < indirect / len(events) < 0.32

    def test_taken_bias(self):
        profile = BranchProfile(
            loop_fraction=0.0, pattern_fraction=0.0,
            data_dependent_fraction=1.0, taken_prob=0.1,
            indirect_fraction=0.0, static_sites=64,
        )
        events = BranchStreamGenerator(profile, seed=3).generate(5000)
        taken = sum(e.taken for e in events)
        assert 0.05 < taken / len(events) < 0.18
