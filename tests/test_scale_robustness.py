"""Scale robustness: characterizations are stable across input scales.

The paper's methodology depends on metrics being properties of the
workload, not of the input size; these tests pin the anchors' key
metrics within a factor band when the input scale doubles.
"""

import pytest

from repro.uarch import XEON_E5645, characterize
from repro.workloads.kernels import hadoop_wordcount, mpi_wordcount, spark_wordcount


@pytest.mark.parametrize(
    "runner", [hadoop_wordcount, spark_wordcount, mpi_wordcount]
)
class TestScaleStability:
    def metrics_at(self, runner, scale):
        result = runner(scale=scale)
        return characterize(result.profile, XEON_E5645).metric_dict()

    def test_mix_is_scale_invariant(self, runner):
        small = self.metrics_at(runner, 0.25)
        large = self.metrics_at(runner, 0.5)
        for metric in ("ratio_branch", "ratio_integer", "ratio_load"):
            assert small[metric] == pytest.approx(large[metric], abs=0.03)

    def test_l1i_within_factor_band(self, runner):
        small = self.metrics_at(runner, 0.25)["l1i_mpki"]
        large = self.metrics_at(runner, 0.5)["l1i_mpki"]
        assert large == pytest.approx(small, rel=0.6, abs=1.5)

    def test_ipc_within_band(self, runner):
        small = self.metrics_at(runner, 0.25)["ipc"]
        large = self.metrics_at(runner, 0.5)["ipc"]
        assert large == pytest.approx(small, rel=0.3)


class TestStackOrderingHoldsAcrossScales:
    @pytest.mark.parametrize("scale", [0.25, 0.5])
    def test_l1i_ordering(self, scale):
        mpi = characterize(
            mpi_wordcount(scale=scale).profile, XEON_E5645
        ).l1i_mpki
        hadoop = characterize(
            hadoop_wordcount(scale=scale).profile, XEON_E5645
        ).l1i_mpki
        spark = characterize(
            spark_wordcount(scale=scale).profile, XEON_E5645
        ).l1i_mpki
        assert mpi < hadoop < spark  # the §5.5 ordering at every scale
