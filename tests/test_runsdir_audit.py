"""Registry-destination audit: every recording verb honours --runs-dir.

One parametrized matrix over (recording verb) x (configuration
channel).  Each case runs the verb with the registry pointed at a
fresh directory — once via the ``--runs-dir`` flag (with
``$REPRO_RUNS_DIR`` deliberately aimed elsewhere, proving flag
precedence) and once via the environment variable alone — and asserts
the run record lands there and nowhere else.  A final case proves the
read side: ``repro metrics`` scrapes the directory it is pointed at.
"""

import glob
import os

import pytest

from repro.cli import main


def _invocation(verb, tmp_path):
    """argv for one cheap recording invocation of ``verb``."""
    if verb == "run":
        return ["--scale", "0.1", "run", "H-Grep"]
    if verb == "trace":
        return [
            "--scale", "0.1", "trace", "H-Grep",
            "--out", str(tmp_path / "trace-out.json"),
        ]
    if verb == "sweep":
        return [
            "--scale", "0.1", "sweep", "--workloads", "H-Grep",
            "--jobs", "1", "--name", "audit",
        ]
    if verb == "faults":
        return ["--scale", "0.1", "faults"]
    if verb == "chaos":
        return [
            "--scale", "0.1", "chaos", "--seeds", "1",
            "--workloads", "wordcount", "--stacks", "Spark",
            "--artifact-dir", str(tmp_path / "chaos-artifacts"),
        ]
    if verb == "fig":
        return ["--scale", "0.1", "fig", "2", "--jobs", "1"]
    if verb == "table":
        return ["table", "1"]
    if verb == "profile":
        return ["--scale", "0.1", "profile", "H-Grep"]
    raise AssertionError(f"unknown verb {verb}")


RECORDING_VERBS = [
    "run", "trace", "sweep", "faults", "chaos", "fig", "table", "profile",
]


def records_in(path):
    return sorted(
        os.path.basename(p) for p in glob.glob(os.path.join(path, "*.json"))
    )


@pytest.mark.parametrize("verb", RECORDING_VERBS)
@pytest.mark.parametrize("channel", ["flag", "env"])
def test_record_lands_in_requested_dir(verb, channel, tmp_path, monkeypatch):
    target = tmp_path / "target-runs"
    decoy = tmp_path / "decoy-runs"
    if channel == "flag":
        # The flag must win over a conflicting environment variable.
        monkeypatch.setenv("REPRO_RUNS_DIR", str(decoy))
        argv = ["--runs-dir", str(target)] + _invocation(verb, tmp_path)
    else:
        monkeypatch.setenv("REPRO_RUNS_DIR", str(target))
        argv = _invocation(verb, tmp_path)
    monkeypatch.chdir(tmp_path)  # any relative-path writes stay in tmp

    assert main(argv) == 0
    assert records_in(str(target)), f"{verb} wrote no record to {target}"
    assert not os.path.isdir(decoy) or not records_in(str(decoy))
    # No stray default registry next to the working directory either.
    assert not os.path.isdir(tmp_path / ".repro-runs")


def test_no_record_suppresses_registry(tmp_path, monkeypatch, capsys):
    target = tmp_path / "target-runs"
    monkeypatch.setenv("REPRO_RUNS_DIR", str(target))
    assert main(["--scale", "0.1", "--no-record", "run", "H-Grep"]) == 0
    assert not os.path.isdir(target) or not records_in(str(target))


def test_metrics_reads_requested_dir(tmp_path, monkeypatch, capsys):
    first = tmp_path / "first-runs"
    second = tmp_path / "second-runs"
    assert main(
        ["--scale", "0.1", "--runs-dir", str(first), "run", "H-Grep"]
    ) == 0
    capsys.readouterr()

    assert main(["--runs-dir", str(first), "metrics"]) == 0
    assert 'experiment="run.H-Grep"' in capsys.readouterr().out

    monkeypatch.setenv("REPRO_RUNS_DIR", str(second))
    assert main(["metrics"]) == 0
    text = capsys.readouterr().out
    assert 'experiment="run.H-Grep"' not in text
    assert text.endswith("# EOF\n")
