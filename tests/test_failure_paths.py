"""Failure-injection and error-path tests across the substrates."""

import pytest

from repro.cluster import Cluster, DistributedFileSystem, FaultPlan, Simulation
from repro.cluster.events import Resource
from repro.stacks import Hadoop, JobFailedError, MapReduceJob, MpiRuntime, Spark
from repro.stacks.scheduler import HADOOP_POLICY, MPI_POLICY, policy_for
from repro.stacks.base import KernelTraits, Meter
from repro.stacks.sql import HiveEngine, Query
from repro.uarch.profile import (
    BranchProfile,
    CodeFootprint,
    CodeRegion,
    DataFootprint,
)


class TestEngineFailures:
    def test_mapper_exception_propagates_with_context(self):
        def broken_mapper(record, emit, meter):
            raise RuntimeError("mapper exploded")

        job = MapReduceJob(name="broken", mapper=broken_mapper)
        with pytest.raises(RuntimeError, match="mapper exploded"):
            Hadoop().run(job, ["a", "b"])

    def test_reducer_exception_propagates(self):
        def mapper(record, emit, meter):
            emit(record, 1)

        def broken_reducer(key, values, emit, meter):
            raise ValueError("reducer exploded")

        job = MapReduceJob(name="broken", mapper=mapper, reducer=broken_reducer)
        with pytest.raises(ValueError, match="reducer exploded"):
            Hadoop().run(job, ["a"])

    def test_spark_transform_exception_propagates(self):
        spark = Spark()
        rdd = spark.parallelize([1, 2, 3]).map(lambda x: 1 / (x - 2))
        with pytest.raises(ZeroDivisionError):
            rdd.collect()

    def test_mpi_rank_exception_propagates(self):
        def program(rank, comm, data, meter):
            if rank == 1:
                raise RuntimeError("rank 1 died")
            yield comm.gather(rank)

        runtime = MpiRuntime(n_ranks=3)
        with pytest.raises(RuntimeError, match="rank 1 died"):
            runtime.run("t", program, [[1]] * 3, KernelTraits(),
                        state_bytes=1024)

    def test_sql_bad_aggregate_function(self):
        query = Query("t").group_by(("k",), {"x": ("median", "v")})
        with pytest.raises(ValueError, match="unknown aggregate"):
            HiveEngine().execute(
                "q", query, {"t": [{"k": 1, "v": 2.0}]}
            )

    def test_sql_missing_column_raises_keyerror(self):
        query = Query("t").project(("missing",))
        with pytest.raises(KeyError):
            HiveEngine().execute("q", query, {"t": [{"k": 1}]})


class TestClusterFailures:
    def test_dfs_read_of_deleted_file(self):
        cluster = Cluster()
        dfs = DistributedFileSystem(cluster)
        handle = dfs.create("/f", 1024)
        dfs.delete("/f")
        with pytest.raises(FileNotFoundError):
            dfs.lookup("/f")
        # The stale handle still indexes its blocks; out-of-range access
        # fails loudly rather than silently reading nothing.
        with pytest.raises(IndexError):
            dfs.read_block(handle, 99, 0)

    def test_resource_double_release_detected(self):
        sim = Simulation()
        resource = Resource(sim, capacity=2)

        def task():
            grant = resource.request()
            yield grant
            resource.release()
            resource.release()  # bug: releasing twice

        sim.process(task())
        with pytest.raises(RuntimeError, match="release without request"):
            sim.run()

    def test_memory_exhaustion_is_loud(self):
        cluster = Cluster()
        node = cluster.node(0)
        with pytest.raises(MemoryError):
            node.allocate_memory(10_000.0)


class TestSchedulerFailurePaths:
    """Engine-level behaviour under injected node loss."""

    def _wordcount_job(self):
        def mapper(record, emit, meter):
            for word in record.split():
                emit(word, 1)

        def reducer(key, values, emit, meter):
            emit(key, sum(values))

        return MapReduceJob(name="wc", mapper=mapper, reducer=reducer)

    DOCS = ["alpha beta gamma delta"] * 120

    def test_hadoop_retries_through_engine(self):
        job = self._wordcount_job()
        base = Hadoop().run(job, self.DOCS, cluster=Cluster())
        plan = FaultPlan.single_crash(node=1, at=0.4 * base.system.elapsed)
        policy = HADOOP_POLICY.scaled(base.system.elapsed / 100.0)
        faulty = Hadoop().run(
            job, self.DOCS, cluster=Cluster(), faults=plan, recovery=policy
        )
        # Same functional answer, recovered execution.
        assert sorted(faulty.output) == sorted(base.output)
        assert faulty.system.tasks_retried > 0
        assert faulty.system.elapsed > base.system.elapsed

    def test_hadoop_retry_is_deterministic_for_one_seed(self):
        job = self._wordcount_job()
        base = Hadoop().run(job, self.DOCS, cluster=Cluster())
        plan = FaultPlan.seeded(3, horizon=base.system.elapsed)
        policy = HADOOP_POLICY.scaled(base.system.elapsed / 100.0)
        runs = [
            Hadoop().run(
                job, self.DOCS, cluster=Cluster(),
                faults=plan, recovery=policy,
            ).system
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_mpi_engine_aborts_on_node_loss(self):
        def program(rank, comm, data, meter):
            total = yield comm.allreduce(len(data), lambda a, b: a + b)
            return total

        from repro.stacks.base import KernelTraits

        runtime = MpiRuntime(n_ranks=5)
        partitions = [[1] * 2000] * 5
        base = runtime.run("m", program, partitions, KernelTraits(),
                           cluster=Cluster())
        plan = FaultPlan.single_crash(node=1, at=0.4 * base.system.elapsed)
        with pytest.raises(JobFailedError, match="aborts the whole job"):
            runtime.run(
                "m", program, partitions, KernelTraits(), cluster=Cluster(),
                faults=plan,
                recovery=MPI_POLICY.scaled(base.system.elapsed / 100.0),
            )

    def test_default_policies_differ_by_stack(self):
        assert policy_for("MPI").abort_on_node_loss
        assert not policy_for("Hadoop").abort_on_node_loss
        assert not policy_for("Spark").abort_on_node_loss


class TestProfileValidation:
    def test_empty_code_footprint_rejected(self):
        with pytest.raises(ValueError):
            CodeFootprint(regions=[])

    def test_zero_weight_footprint_rejected(self):
        with pytest.raises(ValueError):
            CodeFootprint(
                regions=[CodeRegion("r", 1024, weight=0.0)]
            )

    def test_tiny_region_rejected(self):
        with pytest.raises(ValueError):
            CodeRegion("r", 16, weight=1.0)

    def test_branch_fractions_must_sum(self):
        with pytest.raises(ValueError):
            BranchProfile(
                loop_fraction=0.5, pattern_fraction=0.5,
                data_dependent_fraction=0.5,
            )

    def test_data_fractions_bounded(self):
        with pytest.raises(ValueError):
            DataFootprint(
                stream_bytes=1024, state_bytes=1024,
                state_fraction=0.6, hot_fraction=0.6,
            )

    def test_meter_shuffle_negative_bytes(self):
        meter = Meter()
        meter.record_shuffle(10)
        assert meter.bytes_shuffled == 10
