"""Property-based tests for profile composition and merging."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.stacks.base import Meter
from repro.uarch.isa import InstructionClass, InstructionMix, IntBreakdown
from repro.uarch.profile import (
    BehaviorProfile,
    BranchProfile,
    CodeFootprint,
    CodeRegion,
    DataFootprint,
    merge_profiles,
)


def make_profile(name, instructions, state_fraction=0.05, ilp=2.0,
                 loop=0.4, datadep=0.5):
    pattern = 1.0 - loop - datadep
    return BehaviorProfile(
        name=name,
        mix=InstructionMix.from_ratios(
            instructions, load=0.25, store=0.1, branch=0.2, integer=0.38,
            fp=0.02, other=0.05,
        ),
        int_breakdown=IntBreakdown(0.6, 0.2, 0.2),
        code=CodeFootprint(
            [CodeRegion("kernel", 16 * 1024, weight=1.0)]
        ),
        data=DataFootprint(
            stream_bytes=1024 * 1024, state_bytes=512 * 1024,
            state_fraction=state_fraction,
            hot_fraction=0.9 - state_fraction,
        ),
        branches=BranchProfile(
            loop_fraction=loop, pattern_fraction=pattern,
            data_dependent_fraction=datadep, static_sites=128,
        ),
        ilp=ilp,
        instructions=instructions,
    )


class TestMergeProfiles:
    @given(
        st.floats(min_value=1e3, max_value=1e8),
        st.floats(min_value=1e3, max_value=1e8),
    )
    @settings(max_examples=25, deadline=None)
    def test_instructions_additive(self, a_instr, b_instr):
        merged = merge_profiles(
            "m", [make_profile("a", a_instr), make_profile("b", b_instr)]
        )
        assert merged.instructions == pytest.approx(a_instr + b_instr)

    @given(
        st.floats(min_value=1.0, max_value=3.9),
        st.floats(min_value=1.0, max_value=3.9),
        st.floats(min_value=1e3, max_value=1e6),
        st.floats(min_value=1e3, max_value=1e6),
    )
    @settings(max_examples=25, deadline=None)
    def test_ilp_between_parts(self, ilp_a, ilp_b, instr_a, instr_b):
        merged = merge_profiles(
            "m",
            [
                make_profile("a", instr_a, ilp=ilp_a),
                make_profile("b", instr_b, ilp=ilp_b),
            ],
        )
        assert min(ilp_a, ilp_b) - 1e-9 <= merged.ilp <= max(ilp_a, ilp_b) + 1e-9

    @given(
        st.floats(min_value=0.1, max_value=0.6),
        st.floats(min_value=0.1, max_value=0.6),
    )
    @settings(max_examples=25, deadline=None)
    def test_branch_fractions_renormalised(self, loop_a, loop_b):
        merged = merge_profiles(
            "m",
            [
                make_profile("a", 1e5, loop=loop_a, datadep=0.3),
                make_profile("b", 1e5, loop=loop_b, datadep=0.3),
            ],
        )
        total = (
            merged.branches.loop_fraction
            + merged.branches.pattern_fraction
            + merged.branches.data_dependent_fraction
        )
        assert math.isclose(total, 1.0, abs_tol=1e-9)

    def test_mix_ratios_preserved_for_identical_parts(self):
        part = make_profile("a", 1e5)
        merged = merge_profiles("m", [part, make_profile("b", 1e5)])
        assert merged.mix.ratio(InstructionClass.BRANCH) == pytest.approx(
            part.mix.ratio(InstructionClass.BRANCH)
        )

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_profiles("m", [])

    def test_single_part_identity_like(self):
        part = make_profile("a", 5e4)
        merged = merge_profiles("m", [part])
        assert merged.instructions == pytest.approx(part.instructions)
        assert merged.ilp == pytest.approx(part.ilp)


class TestMeterMerge:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_merge_is_commutative_in_totals(self, compares, hashes, in_bytes):
        def build(c, h, b):
            meter = Meter()
            if c or h:
                meter.ops(compare=c, hash=h)
            meter.record_in(b, records=1)
            return meter

        ab = build(compares, hashes, in_bytes)
        ab.merge(build(hashes, compares, in_bytes))
        ba = build(hashes, compares, in_bytes)
        ba.merge(build(compares, hashes, in_bytes))
        assert ab.kernel_mix().total == pytest.approx(ba.kernel_mix().total)
        assert ab.bytes_in == ba.bytes_in

    @given(st.integers(min_value=1, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_mix_total_scales_linearly(self, n):
        single = Meter()
        single.ops(compare=1)
        many = Meter()
        many.ops(compare=n)
        assert many.kernel_mix().total == pytest.approx(
            n * single.kernel_mix().total
        )
