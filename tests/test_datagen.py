"""Tests for the BDGS data generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen import (
    DATASETS,
    AmazonReviews,
    EcommerceTransactions,
    FacebookSocialGraph,
    GoogleWebGraph,
    ProfSearchResumes,
    TpcDsWebTables,
    WikipediaCorpus,
    dataset,
)
from repro.datagen.graph import GraphConfig, GraphGenerator
from repro.datagen.table import rows_to_columns
from repro.datagen.text import TextConfig, TextGenerator


class TestTextGenerator:
    def test_determinism(self):
        a = list(WikipediaCorpus(seed=5).documents(3))
        b = list(WikipediaCorpus(seed=5).documents(3))
        assert a == b

    def test_word_frequencies_are_zipfian(self):
        generator = TextGenerator(TextConfig(vocabulary_size=500), seed=2)
        words = generator.words(20_000)
        from collections import Counter

        counts = Counter(words)
        frequencies = sorted(counts.values(), reverse=True)
        # Head should massively dominate the tail.
        assert frequencies[0] > 10 * frequencies[min(99, len(frequencies) - 1)]

    def test_doc_length_near_mean(self):
        generator = TextGenerator(
            TextConfig(mean_words_per_doc=100), seed=3
        )
        lengths = [len(d.split()) for d in generator.documents(30)]
        assert 80 < np.mean(lengths) < 120

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TextConfig(zipf_exponent=0.9)
        with pytest.raises(ValueError):
            TextConfig(vocabulary_size=0)

    def test_amazon_scores_j_shaped(self):
        reviews = list(AmazonReviews(seed=4).reviews(400))
        scores = [score for _, score in reviews]
        five = scores.count(5) / len(scores)
        two = scores.count(2) / len(scores)
        assert five > 0.4
        assert two < 0.15

    def test_amazon_sentiment_signal(self):
        for text, score in AmazonReviews(seed=4).reviews(50):
            if score >= 4:
                assert "wonderful" in text
            else:
                assert "terrible" in text


class TestGraphGenerator:
    def test_determinism(self):
        a = GoogleWebGraph(scale=0.001, seed=1).edges()
        b = GoogleWebGraph(scale=0.001, seed=1).edges()
        assert a == b

    def test_degree_skew(self):
        graph = GoogleWebGraph(scale=0.002, seed=2)
        adjacency = graph.adjacency()
        in_degrees = {}
        for _source, targets in adjacency.items():
            for target in targets:
                in_degrees[target] = in_degrees.get(target, 0) + 1
        degrees = sorted(in_degrees.values(), reverse=True)
        # Power-law-ish: the top node has many times the median degree.
        assert degrees[0] >= 10 * max(1, degrees[len(degrees) // 2])

    def test_mean_degree_preserved(self):
        graph = GoogleWebGraph(scale=0.002, seed=3)
        edges = graph.edges()
        ratio = len(edges) / graph.config.n_nodes
        expected = GoogleWebGraph.SEED_EDGES / GoogleWebGraph.SEED_NODES
        assert 0.6 * expected < ratio < 1.6 * expected

    def test_undirected_graph_has_symmetric_edges(self):
        graph = FacebookSocialGraph(scale=0.05, seed=4)
        edges = set(graph.edges())
        sampled = list(edges)[:50]
        assert all((b, a) in edges for a, b in sampled)

    def test_feature_vectors_shape(self):
        graph = FacebookSocialGraph(scale=0.05, seed=5)
        features = graph.feature_vectors(dimensions=6)
        assert features.shape == (graph.config.n_nodes, 6)

    def test_no_self_loops(self):
        generator = GraphGenerator(
            GraphConfig(n_nodes=200, mean_out_degree=4), seed=6
        )
        assert all(a != b for a, b in generator.edges())

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            GoogleWebGraph(scale=0.0)


class TestTableGenerators:
    def test_ecommerce_item_ratio(self):
        generator = EcommerceTransactions(seed=7)
        orders = list(generator.orders(200))
        items = list(generator.items(200))
        ratio = len(items) / len(orders)
        expected = (
            EcommerceTransactions.SEED_ITEMS / EcommerceTransactions.SEED_ORDERS
        )
        assert 0.7 * expected < ratio < 1.3 * expected

    def test_order_schema(self):
        row = next(EcommerceTransactions(seed=8).orders(1))
        assert len(row.fields) == 3  # + key = 4 columns (Table 1)

    def test_item_schema(self):
        row = next(EcommerceTransactions(seed=8).items(1))
        assert len(row.fields) == 5  # + key = 6 columns (Table 1)

    def test_resume_record_size(self):
        row = next(ProfSearchResumes(seed=9).rows(1))
        assert 1000 < row.size_bytes() < 1200  # ~1128 bytes per Table 2

    def test_rows_to_columns(self):
        rows = list(EcommerceTransactions(seed=10).orders(5))
        columns = rows_to_columns(rows)
        assert len(columns) == 3
        assert len(columns[0]) == 5

    def test_rows_to_columns_empty(self):
        assert rows_to_columns([]) == {}


class TestTpcDs:
    def test_table_shapes(self):
        tables = TpcDsWebTables(scale=0.1, seed=11).generate()
        sizes = TpcDsWebTables.sizes(tables)
        assert sizes["web_sales"] >= 100
        assert sizes["date_dim"] == 365 * TpcDsWebTables.N_YEARS
        assert set(sizes) == {
            "date_dim", "item", "customer", "customer_demographics", "web_sales",
        }

    def test_foreign_keys_resolve(self):
        tables = TpcDsWebTables(scale=0.05, seed=12).generate()
        item_keys = {row["i_item_sk"] for row in tables.item}
        date_keys = {row["d_date_sk"] for row in tables.date_dim}
        for sale in tables.web_sales[:200]:
            assert sale["ws_item_sk"] in item_keys
            assert sale["ws_sold_date_sk"] in date_keys

    def test_item_popularity_skew(self):
        tables = TpcDsWebTables(scale=0.3, seed=13).generate()
        from collections import Counter

        counts = Counter(s["ws_item_sk"] for s in tables.web_sales)
        frequencies = sorted(counts.values(), reverse=True)
        assert frequencies[0] > 4 * max(1, frequencies[len(frequencies) // 2])

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            TpcDsWebTables(scale=0)


class TestCatalog:
    def test_seven_datasets(self):
        assert len(DATASETS) == 7  # Table 1

    def test_lookup(self):
        assert dataset("wikipedia").record_bytes == 64 * 1024

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            dataset("nope")


@given(st.integers(min_value=1, max_value=50))
@settings(max_examples=10, deadline=None)
def test_word_count_requested(n):
    generator = TextGenerator(TextConfig(vocabulary_size=100), seed=1)
    assert len(generator.words(n)) == n
