"""Functional tests for the software-stack engines."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.stacks import (
    HBase,
    Hadoop,
    MapReduceJob,
    Meter,
    MpiRuntime,
    Spark,
)
from repro.stacks.base import (
    HADOOP_TRAITS,
    MPI_TRAITS,
    SPARK_TRAITS,
    KernelTraits,
    build_profile,
)
from repro.stacks.sql import HiveEngine, ImpalaEngine, Query, SharkEngine


class TestMeter:
    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            Meter().ops(teleport=1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Meter().ops(compare=-1)

    def test_kernel_mix_expansion(self):
        meter = Meter()
        meter.ops(compare=10)
        mix = meter.kernel_mix()
        # compare = load + int + branch
        assert mix.total == pytest.approx(30.0)

    def test_merge(self):
        a, b = Meter(), Meter()
        a.ops(hash=3)
        b.ops(hash=4)
        b.record_in(100, records=2)
        a.merge(b)
        assert a.op_counts["hash"] == 7
        assert a.records_in == 2
        assert a.bytes_in == 100

    def test_int_breakdown_sums_to_one(self):
        meter = Meter()
        meter.ops(array_access=5, fp_op=3, int_op=2)
        breakdown = meter.kernel_int_breakdown()
        total = breakdown.int_addr + breakdown.fp_addr + breakdown.other
        assert total == pytest.approx(1.0)


class TestStackTraits:
    def test_framework_components_split(self):
        meter = Meter()
        meter.record_in(1000, records=10)
        meter.record_shuffle(500, records=5)
        dispatch, streaming = HADOOP_TRAITS.framework_components(meter)
        # Hadoop's shuffle is streaming-type.
        assert streaming > 1000 * HADOOP_TRAITS.per_byte - 1
        assert dispatch == pytest.approx(10 * HADOOP_TRAITS.dispatch_in)

    def test_spark_shuffle_is_dispatch(self):
        meter = Meter()
        meter.record_shuffle(1000, records=10)
        dispatch, _streaming = SPARK_TRAITS.framework_components(meter)
        assert dispatch >= 1000 * SPARK_TRAITS.shuffle_per_byte

    def test_mpi_is_thin(self):
        meter = Meter()
        meter.record_in(1000, records=10)
        assert MPI_TRAITS.framework_instructions(meter) < (
            HADOOP_TRAITS.framework_instructions(meter) / 5
        )


class TestHadoopEngine:
    def wordcount_job(self):
        def mapper(record, emit, meter):
            words = record.split()
            meter.ops(str_byte=len(record), hash=len(words))
            for word in words:
                emit(word, 1)

        def reducer(key, values, emit, meter):
            meter.ops(int_op=len(values))
            emit(key, sum(values))

        return MapReduceJob(
            name="wc", mapper=mapper, reducer=reducer, combiner=reducer,
            kernel=KernelTraits(), state_bytes=1024 * 1024,
        )

    def test_wordcount_matches_reference(self):
        records = ["a b a", "b c", "a"]
        result = Hadoop().run(self.wordcount_job(), records)
        counted = dict(result.output)
        assert counted == {"a": 3, "b": 2, "c": 1}

    def test_shuffle_sorted_within_partition(self):
        def mapper(record, emit, meter):
            emit(record, 1)

        job = MapReduceJob(name="sort", mapper=mapper, n_reduces=1)
        result = Hadoop().run(job, ["d", "b", "a", "c"])
        keys = [k for k, _ in result.output]
        assert keys == sorted(keys)

    def test_meter_accounts_dataflow(self):
        records = ["hello world"] * 4
        result = Hadoop().run(self.wordcount_job(), records)
        assert result.meter.records_in == 4
        assert result.meter.bytes_in == sum(len(r) for r in records)
        assert result.meter.records_shuffled > 0
        assert result.meter.records_out > 0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            Hadoop().run(self.wordcount_job(), [])

    def test_cluster_execution_produces_metrics(self):
        cluster = Cluster(n_nodes=5)
        result = Hadoop().run(
            self.wordcount_job(), ["a b c"] * 20, cluster=cluster
        )
        assert result.system is not None
        assert result.elapsed > 0
        assert 0.0 <= result.system.cpu_utilization <= 1.0


class TestSparkEngine:
    def test_lazy_then_collect(self):
        spark = Spark()
        rdd = spark.parallelize([1, 2, 3, 4])
        doubled = rdd.map(lambda x: 2 * x)
        assert sorted(doubled.collect()) == [2, 4, 6, 8]

    def test_filter(self):
        spark = Spark()
        rdd = spark.parallelize(list(range(10)))
        assert sorted(rdd.filter(lambda x: x % 2 == 0).collect()) == [0, 2, 4, 6, 8]

    def test_flat_map_and_reduce_by_key(self):
        spark = Spark()
        rdd = spark.parallelize(["a b a", "b"])
        counts = dict(
            rdd.flat_map(lambda doc: [(w, 1) for w in doc.split()])
            .reduce_by_key(lambda x, y: x + y)
            .collect()
        )
        assert counts == {"a": 2, "b": 2}

    def test_sort_by(self):
        spark = Spark()
        out = spark.parallelize([3, 1, 2]).sort_by(lambda x: x).collect()
        assert out == [1, 2, 3]

    def test_group_by_key(self):
        spark = Spark()
        grouped = dict(
            spark.parallelize([("k", 1), ("k", 2), ("j", 3)])
            .group_by_key()
            .collect()
        )
        assert sorted(grouped["k"]) == [1, 2]

    def test_count(self):
        spark = Spark()
        assert spark.parallelize([1] * 7).count() == 7

    def test_reduce(self):
        spark = Spark()
        assert spark.parallelize([1, 2, 3]).reduce(lambda a, b: a + b) == 6

    def test_cache_avoids_recount_of_source(self):
        spark = Spark()
        rdd = spark.parallelize(list(range(50))).cache()
        rdd.count()
        first_stages = len(spark._stage_stats)
        rdd.count()
        assert len(spark._stage_stats) >= first_stages  # still evaluates ops

    def test_empty_parallelize_rejected(self):
        with pytest.raises(ValueError):
            Spark().parallelize([])


class TestMpiRuntime:
    def test_allreduce(self):
        def program(rank, comm, data, meter):
            total = yield comm.allreduce(rank + 1, lambda a, b: a + b)
            return total

        runtime = MpiRuntime(n_ranks=4)
        result = runtime.run(
            "t", program, [[1]] * 4, KernelTraits(), state_bytes=1024,
        )
        assert result.output == [10, 10, 10, 10]

    def test_alltoall(self):
        def program(rank, comm, data, meter):
            received = yield comm.alltoall(
                [f"{rank}->{dest}" for dest in range(comm.size)]
            )
            return received

        runtime = MpiRuntime(n_ranks=3)
        result = runtime.run(
            "t", program, [[1]] * 3, KernelTraits(), state_bytes=1024,
        )
        assert result.output[1] == ["0->1", "1->1", "2->1"]

    def test_gather_and_broadcast(self):
        def program(rank, comm, data, meter):
            everyone = yield comm.gather(rank)
            root_value = yield comm.broadcast(sum(everyone), root=0)
            return root_value

        runtime = MpiRuntime(n_ranks=3)
        result = runtime.run(
            "t", program, [[1]] * 3, KernelTraits(), state_bytes=1024,
        )
        assert result.output == [3, 3, 3]

    def test_collective_mismatch_detected(self):
        def program(rank, comm, data, meter):
            if rank == 0:
                yield comm.gather(1)
            else:
                yield comm.allreduce(1, lambda a, b: a + b)

        runtime = MpiRuntime(n_ranks=2)
        with pytest.raises(RuntimeError):
            runtime.run("t", program, [[1]] * 2, KernelTraits(), state_bytes=1024)

    def test_meter_records_shuffle(self):
        def program(rank, comm, data, meter):
            meter.ops(int_op=10)
            yield comm.gather([1] * 50)
            return None

        runtime = MpiRuntime(n_ranks=2)
        result = runtime.run(
            "t", program, [[1]] * 2, KernelTraits(), state_bytes=1024,
        )
        assert result.meter.bytes_shuffled > 0


class TestHBase:
    def test_put_get(self):
        store = HBase()
        meter = Meter()
        store.put(5, "v5", meter)
        assert store.get(5, meter) == "v5"

    def test_get_after_flush(self):
        store = HBase(memstore_limit=4)
        meter = Meter()
        for key in range(10):
            store.put(key, f"v{key}", meter)
        store.flush()
        assert store.n_sstables >= 2
        assert store.get(3, meter) == "v3"

    def test_missing_key(self):
        store = HBase()
        store.load([(1, "a")])
        assert store.get(99, Meter()) is None

    def test_newest_version_wins(self):
        store = HBase(memstore_limit=2)
        meter = Meter()
        store.put(1, "old", meter)
        store.put(2, "x", meter)  # triggers flush of old
        store.put(1, "new", meter)
        store.flush()
        assert store.get(1, meter) == "new"

    def test_read_workload_profile(self):
        store = HBase()
        store.load([(k, f"v{k}") for k in range(100)])
        result = store.run_read_workload("H-Read-test", [1, 2, 3, 1])
        assert result.output == 4
        assert result.profile.instructions > 0


class TestSqlEngines:
    def tables(self):
        return {
            "t": [
                {"id": 1, "v": 5.0, "k": "a"},
                {"id": 2, "v": 15.0, "k": "b"},
                {"id": 3, "v": 25.0, "k": "a"},
            ],
            "other": [{"id": 2, "w": 1.0}],
        }

    def test_filter_project(self):
        query = Query("t").filter(lambda r: r["v"] > 10).project(("id",))
        result = ImpalaEngine().execute("q", query, self.tables())
        assert result.output == [{"id": 2}, {"id": 3}]

    def test_order_by(self):
        query = Query("t").order_by("v", descending=True)
        result = HiveEngine().execute("q", query, self.tables())
        assert [r["id"] for r in result.output] == [3, 2, 1]

    def test_difference(self):
        query = Query("t").difference("other", "id")
        result = SharkEngine().execute("q", query, self.tables())
        assert sorted(r["id"] for r in result.output) == [1, 3]

    def test_join(self):
        query = Query("t").join("other", "id", "id")
        result = HiveEngine().execute("q", query, self.tables())
        assert len(result.output) == 1
        assert result.output[0]["w"] == 1.0

    def test_group_by_aggregates(self):
        query = Query("t").group_by(
            ("k",), {"total": ("sum", "v"), "n": ("count", "id"),
                     "mean": ("avg", "v")}
        )
        result = ImpalaEngine().execute("q", query, self.tables())
        by_key = {r["k"]: r for r in result.output}
        assert by_key["a"]["total"] == pytest.approx(30.0)
        assert by_key["a"]["n"] == 2
        assert by_key["a"]["mean"] == pytest.approx(15.0)

    def test_limit(self):
        query = Query("t").limit(2)
        result = SharkEngine().execute("q", query, self.tables())
        assert len(result.output) == 2

    def test_engines_agree(self):
        query_builder = lambda: Query("t").filter(lambda r: r["v"] > 4).order_by("id")
        results = [
            engine().execute("q", query_builder(), self.tables()).output
            for engine in (HiveEngine, SharkEngine, ImpalaEngine)
        ]
        assert results[0] == results[1] == results[2]

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            HiveEngine().execute("q", Query("missing"), self.tables())

    def test_wide_operator_shuffles(self):
        query = Query("t").order_by("v")
        result = HiveEngine().execute("q", query, self.tables())
        assert result.meter.bytes_shuffled > 0


class TestBuildProfile:
    def test_pure_dispatch_meter_gets_default_kernel(self):
        meter = Meter()
        meter.record_in(100, records=1)
        from repro.uarch.profile import DataFootprint

        profile = build_profile(
            "x", meter, HADOOP_TRAITS, KernelTraits(),
            DataFootprint(
                stream_bytes=1024, state_bytes=1024, state_fraction=0.1,
            ),
        )
        assert profile.instructions > 0

    def test_framework_share_shapes_footprint(self):
        heavy, light = Meter(), Meter()
        for meter in (heavy, light):
            meter.ops(compare=1000, hash=1000)
        heavy.record_in(100_000, records=1000)   # heavy dispatch
        light.record_in(100, records=1)
        from repro.uarch.profile import DataFootprint

        data = DataFootprint(
            stream_bytes=1024 * 1024, state_bytes=1024 * 1024,
            state_fraction=0.05,
        )
        heavy_profile = build_profile("h", heavy, HADOOP_TRAITS, KernelTraits(), data)
        light_profile = build_profile("l", light, HADOOP_TRAITS, KernelTraits(), data)
        heavy_fw = sum(
            r.weight for r in heavy_profile.code.regions if "framework" in r.name
        )
        light_fw = sum(
            r.weight for r in light_profile.code.regions if "framework" in r.name
        )
        assert heavy_fw > light_fw


class TestHBaseCompaction:
    def test_compaction_bounds_sstable_count(self):
        from repro.stacks import HBase
        from repro.stacks.base import Meter

        store = HBase(memstore_limit=8)
        meter = Meter()
        for key in range(200):
            store.put(key, f"v{key}", meter)
        store.flush()
        assert store.n_sstables < HBase.COMPACTION_THRESHOLD + 1

    def test_compaction_preserves_newest_values(self):
        from repro.stacks import HBase
        from repro.stacks.base import Meter

        store = HBase(memstore_limit=4)
        meter = Meter()
        for round_ in range(6):
            for key in range(8):
                store.put(key, f"round{round_}-{key}", meter)
        store.flush()
        store.compact()
        for key in range(8):
            assert store.get(key, meter) == f"round5-{key}"


class TestClusterSimulationPaths:
    """Every engine's discrete-event path produces sane system metrics."""

    def _check(self, result):
        assert result.system is not None
        assert result.elapsed > 0
        m = result.system
        assert 0.0 <= m.cpu_utilization <= 1.0
        assert 0.0 <= m.io_wait_ratio <= 1.0
        assert abs(m.cpu_utilization + m.io_wait_ratio - 1.0) < 1e-6 or (
            m.cpu_utilization == 0.0 and m.io_wait_ratio == 0.0
        )

    def test_spark_cluster_path(self):
        from repro.workloads.kernels import spark_grep

        self._check(spark_grep(scale=0.2, cluster=Cluster()))

    def test_mpi_cluster_path(self):
        from repro.workloads.kernels import mpi_wordcount

        self._check(mpi_wordcount(scale=0.2, cluster=Cluster()))

    def test_sql_cluster_path(self):
        from repro.workloads.relational import impala_orderby

        self._check(impala_orderby(scale=0.2, cluster=Cluster()))

    def test_hbase_cluster_path(self):
        from repro.workloads.service import hbase_read

        self._check(hbase_read(scale=0.2, cluster=Cluster()))


class TestHadoopSpill:
    def make_job(self, buffer_bytes):
        def mapper(record, emit, meter):
            emit(record, "x" * 64)

        return MapReduceJob(
            name="spill", mapper=mapper, sort_buffer_bytes=buffer_bytes,
            n_maps=2, n_reduces=1,
        )

    def test_small_output_fits_buffer(self):
        cluster = Cluster(n_nodes=2)
        Hadoop().run(self.make_job(64 * 1024 * 1024), ["a"] * 50, cluster=cluster)
        written_small = sum(n.disk.bytes_written for n in cluster.nodes)

        cluster2 = Cluster(n_nodes=2)
        Hadoop().run(self.make_job(128), ["a"] * 50, cluster=cluster2)
        written_spilling = sum(n.disk.bytes_written for n in cluster2.nodes)
        # A tiny sort buffer forces merge rewrites: ~2x map-side writes.
        assert written_spilling > 1.3 * written_small


class TestHadoopOnDfs:
    def test_data_local_scheduling_and_replicated_output(self):
        from repro.cluster import DistributedFileSystem

        def mapper(record, emit, meter):
            for word in record.split():
                emit(word, 1)

        def reducer(key, values, emit, meter):
            emit(key, sum(values))

        job = MapReduceJob(
            name="dfs-wc", mapper=mapper, reducer=reducer,
            n_maps=10, n_reduces=4,
        )
        plain_cluster = Cluster(n_nodes=5)
        Hadoop().run(job, ["a b"] * 40, cluster=plain_cluster)
        plain_net = sum(n.nic.total_bytes for n in plain_cluster.nodes)

        dfs_cluster = Cluster(n_nodes=5)
        dfs = DistributedFileSystem(dfs_cluster, replication=3)
        result = Hadoop().run(job, ["a b"] * 40, cluster=dfs_cluster, dfs=dfs)
        dfs_net = sum(n.nic.total_bytes for n in dfs_cluster.nodes)

        assert dict(result.output) == {"a": 40, "b": 40}
        # Replicated output adds network traffic over the plain path.
        assert dfs_net > plain_net
