"""Tests for the task scheduler and the WCRT profiler on real workloads."""

import pytest

from repro.cluster import Cluster
from repro.core.profiler import Profiler
from repro.stacks.scheduler import TaskDescriptor, run_waves
from repro.uarch.counters import METRIC_NAMES
from repro.workloads import workload


class TestTaskDescriptor:
    def test_rejects_negative_cpu(self):
        with pytest.raises(ValueError):
            TaskDescriptor(cpu_instructions=-1)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            TaskDescriptor(cpu_instructions=1, read_bytes=-5)


class TestRunWaves:
    def test_single_wave_metrics(self):
        cluster = Cluster(n_nodes=2)
        wave = [
            TaskDescriptor(
                cpu_instructions=1e9, read_bytes=10_000_000, preferred_node=i
            )
            for i in range(4)
        ]
        metrics = run_waves(cluster, [wave], instruction_rate=2.5e9)
        assert metrics.elapsed > 0
        assert 0.0 <= metrics.cpu_utilization <= 1.0
        assert metrics.disk_bandwidth_mbps > 0

    def test_barrier_between_waves(self):
        cluster = Cluster(n_nodes=1)
        first = [TaskDescriptor(cpu_instructions=2.5e9)]  # 1 s of compute
        second = [TaskDescriptor(cpu_instructions=2.5e9)]
        run_waves(cluster, [first, second], instruction_rate=2.5e9)
        # Two sequential 1 s tasks on one core: at least 2 s elapsed.
        assert cluster.sim.now >= 2.0 - 1e-9

    def test_round_robin_placement(self):
        cluster = Cluster(n_nodes=3)
        wave = [TaskDescriptor(cpu_instructions=2.5e8) for _ in range(3)]
        run_waves(cluster, [wave], instruction_rate=2.5e9)
        busy_nodes = [n for n in cluster.nodes if n.cpu_time > 0]
        assert len(busy_nodes) == 3

    def test_network_traffic(self):
        cluster = Cluster(n_nodes=2)
        wave = [TaskDescriptor(cpu_instructions=1e6, net_bytes=5_000_000)]
        metrics = run_waves(cluster, [wave], instruction_rate=2.5e9)
        assert metrics.network_bandwidth_mbps > 0

    def test_requires_positive_rate(self):
        with pytest.raises(ValueError):
            run_waves(Cluster(n_nodes=1), [[]], instruction_rate=0)

    def test_random_writes_slower_than_sequential(self):
        sequential_cluster = Cluster(n_nodes=1)
        random_cluster = Cluster(n_nodes=1)
        descriptor = dict(cpu_instructions=1e6, write_bytes=4_000_000)
        run_waves(
            sequential_cluster,
            [[TaskDescriptor(**descriptor, random_writes=False)]],
            instruction_rate=2.5e9,
        )
        run_waves(
            random_cluster,
            [[TaskDescriptor(**descriptor, random_writes=True)]],
            instruction_rate=2.5e9,
        )
        assert random_cluster.sim.now > sequential_cluster.sim.now


class TestProfilerOnRealWorkloads:
    @pytest.fixture(scope="class")
    def record(self):
        profiler = Profiler(node="node3", scale=0.25)
        return profiler.profile(workload("H-Grep"))

    def test_record_shape(self, record):
        assert record.workload_id == "H-Grep"
        assert record.metrics.shape == (45,)
        assert record.node == "node3"

    def test_named_metric_lookup(self, record):
        assert record.metric("ipc") == pytest.approx(
            record.counters.ipc
        )

    def test_metric_subset_selection(self):
        profiler = Profiler(scale=0.25, metric_names=["ipc", "l1i_mpki"])
        record = profiler.profile(workload("M-Grep"))
        assert record.metrics.shape == (2,)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            Profiler(metric_names=["ipc", "bogus"])

    def test_profile_many(self):
        profiler = Profiler(scale=0.2)
        records = profiler.profile_many(
            [workload("M-Grep"), workload("M-WordCount")]
        )
        assert [r.workload_id for r in records] == ["M-Grep", "M-WordCount"]

    def test_all_metric_names_covered(self):
        assert len(METRIC_NAMES) == 45
