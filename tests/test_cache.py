"""Unit and property-based tests for the cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.cache import CacheConfig, CacheHierarchy, SetAssociativeCache


def make_cache(size_kb=4, ways=4):
    return SetAssociativeCache(
        CacheConfig("test", size_kb * 1024, ways=ways)
    )


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig("L1", 32 * 1024, ways=4)
        assert config.num_sets == 128

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, ways=3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 0, ways=1)


class TestSetAssociativeCache:
    def test_first_access_misses(self):
        cache = make_cache()
        assert cache.access(0) is False
        assert cache.misses == 1

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(7)
        assert cache.access(7) is True
        assert cache.hits == 1

    def test_lru_eviction_order(self):
        # Direct-mapped-per-set behaviour with 2 ways: third distinct tag
        # in a set evicts the least recently used.
        cache = SetAssociativeCache(CacheConfig("t", 2 * 64, ways=2))
        # One set only: lines 0, 1, 2 share it.
        cache.access(0)
        cache.access(1)
        cache.access(0)      # 1 is now LRU
        cache.access(2)      # evicts 1
        assert cache.access(0) is True
        assert cache.access(1) is False

    def test_run_counts_misses(self):
        cache = make_cache()
        misses = cache.run([1, 2, 3, 1, 2, 3])
        assert misses == 3

    def test_flush_clears_contents(self):
        cache = make_cache()
        cache.access(5)
        cache.flush()
        assert cache.access(5) is False

    def test_reset_stats_keeps_contents(self):
        cache = make_cache()
        cache.access(5)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.access(5) is True

    def test_working_set_within_capacity_always_hits_after_warmup(self):
        cache = make_cache(size_kb=4, ways=4)  # 64 lines
        lines = list(range(32))
        cache.run(lines)
        cache.reset_stats()
        cache.run(lines * 4)
        assert cache.misses == 0

    @given(st.lists(st.integers(min_value=0, max_value=4096),
                    min_size=1, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_lru_inclusion_property(self, trace):
        """A strictly larger same-associativity-scaled LRU cache never
        misses more on the same trace (stack-inclusion property)."""
        small = SetAssociativeCache(CacheConfig("s", 64 * 64, ways=64))
        large = SetAssociativeCache(CacheConfig("l", 256 * 64, ways=256))
        small_misses = small.run(trace)
        large_misses = large.run(trace)
        assert large_misses <= small_misses

    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_accounting_invariants(self, trace):
        cache = make_cache()
        cache.run(trace)
        assert cache.hits + cache.misses == len(trace)
        assert cache.misses >= len(set(trace)) - cache.config.num_sets * cache.config.ways or True
        assert 0.0 <= cache.miss_ratio <= 1.0
        # Distinct lines lower-bound misses via compulsory misses.
        assert cache.misses >= min(
            len(set(trace)),
            1,
        )


class TestCacheHierarchy:
    def make_hierarchy(self):
        return CacheHierarchy(
            l1i=CacheConfig("L1I", 4 * 1024, 4),
            l1d=CacheConfig("L1D", 4 * 1024, 4),
            l2=CacheConfig("L2", 16 * 1024, 8),
            l3=CacheConfig("L3", 64 * 1024, 8),
        )

    def test_miss_propagates_down(self):
        hierarchy = self.make_hierarchy()
        hierarchy.fetch(100)
        stats = {s.name: s for s in hierarchy.stats()}
        assert stats["L1I"].misses == 1
        assert stats["L2"].misses == 1
        assert stats["L3"].misses == 1
        assert hierarchy.offcore_accesses == 1
        assert hierarchy.fetch_fills["mem"] == 1

    def test_l2_hit_stops_propagation(self):
        hierarchy = self.make_hierarchy()
        hierarchy.fetch(100)
        # Evict from tiny L1I by touching many lines mapping everywhere,
        # then re-fetch: L2 should serve it.
        for line in range(1000, 1200):
            hierarchy.fetch(line)
        before = hierarchy.l3.accesses
        hierarchy.fetch(100)
        stats = {s.name: s for s in hierarchy.stats()}
        assert hierarchy.fetch_fills["l2"] >= 1 or hierarchy.fetch_fills["l3"] >= 1
        assert stats["L2"].accesses > 0
        assert hierarchy.l3.accesses >= before

    def test_data_and_fetch_tracked_separately(self):
        hierarchy = self.make_hierarchy()
        hierarchy.fetch(1)
        hierarchy.load_store(2)
        stats = {s.name: s for s in hierarchy.stats()}
        assert stats["L1I"].accesses == 1
        assert stats["L1D"].accesses == 1
        assert stats["L2"].accesses == 2

    def test_mpki(self):
        hierarchy = self.make_hierarchy()
        hierarchy.fetch(1)
        stats = {s.name: s for s in hierarchy.stats()}
        assert stats["L1I"].mpki(1000.0) == 1.0

    def test_mpki_requires_positive_instructions(self):
        hierarchy = self.make_hierarchy()
        hierarchy.fetch(1)
        with pytest.raises(ValueError):
            hierarchy.stats()[0].mpki(0)

    def test_reset_stats(self):
        hierarchy = self.make_hierarchy()
        hierarchy.fetch(1)
        hierarchy.reset_stats()
        assert hierarchy.fetch_fills == {"l2": 0, "l3": 0, "mem": 0}
        assert all(s.accesses == 0 for s in hierarchy.stats())

    def test_no_l3_configuration(self):
        hierarchy = CacheHierarchy(
            l1i=CacheConfig("L1I", 4 * 1024, 4),
            l1d=CacheConfig("L1D", 4 * 1024, 4),
            l2=CacheConfig("L2", 16 * 1024, 8),
            l3=None,
        )
        hierarchy.load_store(5)
        assert hierarchy.data_fills["mem"] == 1
        assert len(hierarchy.stats()) == 3
