"""Tests for the discrete-event simulation core."""

import pytest

from repro.cluster.events import Resource, Simulation


class TestTimeouts:
    def test_timeout_advances_clock(self):
        sim = Simulation()
        fired = []

        def process():
            yield sim.timeout(5.0)
            fired.append(sim.now)

        sim.process(process())
        sim.run()
        assert fired == [5.0]

    def test_ordering(self):
        sim = Simulation()
        order = []

        def process(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(process(3.0, "c"))
        sim.process(process(1.0, "a"))
        sim.process(process(2.0, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_run_until(self):
        sim = Simulation()

        def process():
            yield sim.timeout(10.0)

        sim.process(process())
        final = sim.run(until=4.0)
        assert final == 4.0


class TestProcesses:
    def test_return_value_becomes_event_value(self):
        sim = Simulation()

        def inner():
            yield sim.timeout(1.0)
            return 42

        results = []

        def outer():
            value = yield sim.process(inner())
            results.append(value)

        sim.process(outer())
        sim.run()
        assert results == [42]

    def test_bad_yield_type(self):
        sim = Simulation()

        def process():
            yield "not an event"

        sim.process(process())
        with pytest.raises(TypeError):
            sim.run()

    def test_all_of(self):
        sim = Simulation()
        done = []

        def worker(delay):
            yield sim.timeout(delay)
            return delay

        def coordinator():
            gate = sim.all_of([
                sim.process(worker(2.0)),
                sim.process(worker(5.0)),
            ])
            values = yield gate
            done.append((sim.now, values))

        sim.process(coordinator())
        sim.run()
        assert done == [(5.0, [2.0, 5.0])]


class TestResource:
    def test_contention_serialises(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)
        finish = []

        def worker(tag):
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(2.0)
            finally:
                resource.release()
            finish.append((tag, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert finish == [("a", 2.0), ("b", 4.0)]

    def test_capacity_parallelism(self):
        sim = Simulation()
        resource = Resource(sim, capacity=2)
        finish = []

        def worker():
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(3.0)
            finally:
                resource.release()
            finish.append(sim.now)

        for _ in range(2):
            sim.process(worker())
        sim.run()
        assert finish == [3.0, 3.0]

    def test_utilization_accounting(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)

        def worker():
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(4.0)
            finally:
                resource.release()
            yield sim.timeout(4.0)  # idle tail

        sim.process(worker())
        sim.run()
        assert resource.utilization() == pytest.approx(0.5)

    def test_release_without_request(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_queue_time_accumulates(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)

        def worker():
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(2.0)
            finally:
                resource.release()

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert resource.queue_time() == pytest.approx(2.0)
