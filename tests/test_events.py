"""Tests for the discrete-event simulation core."""

import pytest

from repro.cluster.events import Interrupted, Resource, Simulation


class TestTimeouts:
    def test_timeout_advances_clock(self):
        sim = Simulation()
        fired = []

        def process():
            yield sim.timeout(5.0)
            fired.append(sim.now)

        sim.process(process())
        sim.run()
        assert fired == [5.0]

    def test_ordering(self):
        sim = Simulation()
        order = []

        def process(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(process(3.0, "c"))
        sim.process(process(1.0, "a"))
        sim.process(process(2.0, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_run_until(self):
        sim = Simulation()

        def process():
            yield sim.timeout(10.0)

        sim.process(process())
        final = sim.run(until=4.0)
        assert final == 4.0


class TestProcesses:
    def test_return_value_becomes_event_value(self):
        sim = Simulation()

        def inner():
            yield sim.timeout(1.0)
            return 42

        results = []

        def outer():
            value = yield sim.process(inner())
            results.append(value)

        sim.process(outer())
        sim.run()
        assert results == [42]

    def test_bad_yield_type(self):
        sim = Simulation()

        def process():
            yield "not an event"

        sim.process(process())
        with pytest.raises(TypeError):
            sim.run()

    def test_all_of(self):
        sim = Simulation()
        done = []

        def worker(delay):
            yield sim.timeout(delay)
            return delay

        def coordinator():
            gate = sim.all_of([
                sim.process(worker(2.0)),
                sim.process(worker(5.0)),
            ])
            values = yield gate
            done.append((sim.now, values))

        sim.process(coordinator())
        sim.run()
        assert done == [(5.0, [2.0, 5.0])]


class TestResource:
    def test_contention_serialises(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)
        finish = []

        def worker(tag):
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(2.0)
            finally:
                resource.release()
            finish.append((tag, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert finish == [("a", 2.0), ("b", 4.0)]

    def test_capacity_parallelism(self):
        sim = Simulation()
        resource = Resource(sim, capacity=2)
        finish = []

        def worker():
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(3.0)
            finally:
                resource.release()
            finish.append(sim.now)

        for _ in range(2):
            sim.process(worker())
        sim.run()
        assert finish == [3.0, 3.0]

    def test_utilization_accounting(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)

        def worker():
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(4.0)
            finally:
                resource.release()
            yield sim.timeout(4.0)  # idle tail

        sim.process(worker())
        sim.run()
        assert resource.utilization() == pytest.approx(0.5)

    def test_release_without_request(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_queue_time_accumulates(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)

        def worker():
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(2.0)
            finally:
                resource.release()

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert resource.queue_time() == pytest.approx(2.0)


class TestInterrupt:
    def test_interrupt_mid_timeout(self):
        sim = Simulation()
        seen = []

        def worker():
            try:
                yield sim.timeout(10.0)
                seen.append("finished")
            except Interrupted as exc:
                seen.append(exc.cause)
                raise

        process = sim.process(worker())
        sim.run(until=3.0)
        assert process.interrupt("node died") is True
        assert process.interrupted
        assert process.interrupt_cause == "node died"
        assert isinstance(process.value, Interrupted)
        assert seen == ["node died"]

    def test_interrupt_after_completion_is_noop(self):
        sim = Simulation()

        def worker():
            yield sim.timeout(1.0)
            return "done"

        process = sim.process(worker())
        sim.run()
        assert process.interrupt("too late") is False
        assert not process.interrupted
        assert process.value == "done"

    def test_double_interrupt_same_process(self):
        # The first interrupt kills the process; the second must be a
        # clean no-op (report False, preserve the original cause) — the
        # fault injector and a losing speculation race can both try to
        # kill the same attempt at one simulated instant.
        sim = Simulation()
        unwound = []

        def worker():
            try:
                yield sim.timeout(10.0)
            finally:
                unwound.append(sim.now)

        process = sim.process(worker())
        sim.run(until=2.0)
        assert process.interrupt("first cause") is True
        assert process.interrupt("second cause") is False
        assert process.interrupt_cause == "first cause"
        assert unwound == [2.0]  # finally ran exactly once

    def test_double_interrupt_does_not_double_release_resource(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)

        def holder():
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(100.0)
            finally:
                resource.release()

        process = sim.process(holder())
        sim.run(until=1.0)
        process.interrupt("crash")
        # A second kill must not re-run the finally: in_use would go
        # negative (caught as SimulationError by release()).
        process.interrupt("crash again")
        sim.run()
        assert resource.in_use == 0

    def test_stale_event_does_not_resume_interrupted_process(self):
        # The abandoned timeout still fires later; the dead process must
        # not be stepped again.
        sim = Simulation()
        resumed = []

        def worker():
            yield sim.timeout(10.0)
            resumed.append(sim.now)

        process = sim.process(worker())
        sim.run(until=1.0)
        process.interrupt()
        sim.run()
        assert resumed == []
        assert sim.now == 10.0  # the stale timeout drained harmlessly

    def test_interrupt_releases_held_resource(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)
        finish = []

        def holder():
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(100.0)
            finally:
                resource.release()

        def waiter():
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(1.0)
            finally:
                resource.release()
            finish.append(sim.now)

        holding = sim.process(holder())
        sim.process(waiter())
        sim.run(until=5.0)
        holding.interrupt("killed")
        sim.run()
        # The waiter got the freed unit at t=5 and ran for 1s.
        assert finish == [6.0]
        assert resource.in_use == 0

    def test_interrupt_cascades_into_child_process(self):
        sim = Simulation()
        outcomes = []

        def child():
            try:
                yield sim.timeout(50.0)
                outcomes.append("child finished")
            except Interrupted:
                outcomes.append("child interrupted")
                raise

        def parent():
            yield sim.process(child())
            outcomes.append("parent finished")

        parent_proc = sim.process(parent())
        sim.run(until=2.0)
        parent_proc.interrupt("crash")
        sim.run()
        assert outcomes == ["child interrupted"]

    def test_catching_interrupt_keeps_process_alive(self):
        sim = Simulation()
        log = []

        def worker():
            try:
                yield sim.timeout(100.0)
            except Interrupted:
                log.append("caught")
            yield sim.timeout(2.0)
            log.append(sim.now)

        process = sim.process(worker())
        sim.run(until=1.0)
        process.interrupt()
        sim.run()
        assert not process.interrupted  # it survived
        assert log == ["caught", 3.0]


class TestResourceCancel:
    def test_cancel_queued_request_removes_waiter(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)

        def holder():
            grant = resource.request()
            yield grant
            try:
                yield sim.timeout(10.0)
            finally:
                resource.release()

        cancelled = {}

        def canceller():
            grant = resource.request()
            cancelled["grant"] = grant
            try:
                yield grant
            except Interrupted:
                resource.cancel(grant)
                raise

        sim.process(holder())
        process = sim.process(canceller())
        sim.run(until=2.0)
        process.interrupt()
        sim.run()
        # No phantom waiter: queueing stopped at the cancel (2s), not at
        # the holder's release (10s).
        assert resource.queue_time() == pytest.approx(2.0)
        assert resource.in_use == 0

    def test_cancel_granted_request_releases(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)

        def worker():
            grant = resource.request()
            yield grant
            resource.cancel(grant)  # already granted: acts as release

        sim.process(worker())
        sim.run()
        assert resource.in_use == 0

    def test_cancel_granted_slot_promotes_waiter(self):
        # Cancelling an already-granted request must hand the slot to
        # the next FIFO waiter, exactly like a release would — a task
        # killed at the instant its grant fired must not strand the
        # queue behind a phantom holder.
        sim = Simulation()
        resource = Resource(sim, capacity=1)
        served = []

        def canceller():
            grant = resource.request()
            yield grant
            yield sim.timeout(1.0)
            resource.cancel(grant)

        def waiter():
            grant = resource.request()
            yield grant
            served.append(sim.now)
            resource.release()

        sim.process(canceller())
        sim.process(waiter())
        sim.run()
        assert served == [1.0]
        assert resource.in_use == 0
        assert resource.waiters == 0


class TestRunUntilEvent:
    def test_stops_at_gate_with_later_events_pending(self):
        sim = Simulation()

        def fast():
            yield sim.timeout(2.0)

        def slow_monitor():
            yield sim.timeout(500.0)

        gate = sim.all_of([sim.process(fast())])
        sim.process(slow_monitor())
        sim.run(until_event=gate)
        assert gate.triggered
        assert sim.now == 2.0  # the stale monitor did not inflate time

    def test_already_triggered_gate_returns_immediately(self):
        sim = Simulation()

        def fast():
            yield sim.timeout(1.0)

        gate = sim.all_of([sim.process(fast())])
        sim.run(until_event=gate)
        at = sim.now
        assert sim.run(until_event=gate) == at
