"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_scale_flag(self):
        args = build_parser().parse_args(["--scale", "0.2", "list"])
        assert args.scale == 0.2

    def test_platform_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "S-WordCount", "--platform", "m1"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "S-WordCount"])
        assert args.command == "trace"
        assert args.out == "trace.json"
        assert args.sample_interval is None

    def test_trace_flags(self):
        args = build_parser().parse_args(
            ["trace", "S-WordCount", "--out", "t.json", "--sample-interval", "0.05"]
        )
        assert args.out == "t.json"
        assert args.sample_interval == 0.05

    def test_run_seed_flag(self):
        args = build_parser().parse_args(["run", "S-WordCount", "--seed", "9"])
        assert args.seed == 9

    def test_runs_dir_and_no_record(self):
        args = build_parser().parse_args(
            ["--runs-dir", "/tmp/r", "--no-record", "list"]
        )
        assert args.runs_dir == "/tmp/r"
        assert args.no_record

    def test_uniform_json_flags(self):
        for command in (["reduce"], ["stacks"], ["system"]):
            args = build_parser().parse_args(command + ["--json"])
            assert args.json

    def test_report_diff_history_parse(self):
        args = build_parser().parse_args(["report", "--strict"])
        assert args.command == "report" and args.strict
        args = build_parser().parse_args(
            ["diff", "a.json", "fig3~1", "--rel-threshold", "0.1"]
        )
        assert args.run_a == "a.json"
        assert args.run_b == "fig3~1"
        assert args.rel_threshold == 0.1
        args = build_parser().parse_args(
            ["history", "fig3", "--metric", "bigdata.ipc", "--html"]
        )
        assert args.experiment == "fig3"
        assert args.metric == ["bigdata.ipc"]
        assert args.html


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "H-Read" in output
        assert "77 catalog workloads" in output

    def test_run_workload(self, capsys):
        assert main(["--scale", "0.2", "run", "H-Grep"]) == 0
        output = capsys.readouterr().out
        assert "l1i_mpki" in output

    def test_run_on_atom(self, capsys):
        assert main(["--scale", "0.2", "run", "M-Grep", "--platform", "d510"]) == 0
        assert "Atom" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["fig", "12"]) == 2

    def test_unknown_table(self, capsys):
        assert main(["table", "9"]) == 2

    def test_unknown_workload_exits_2_with_typed_error(self, capsys):
        # The repro.errors.UsageError family maps to exit 2, one line,
        # no traceback — uniformly across verbs.
        assert main(["run", "Nope"]) == 2
        err = capsys.readouterr().err
        assert "UnknownWorkloadError" in err
        assert "Nope" in err

    def test_lookup_still_raises_keyerror_for_library_callers(self):
        from repro.workloads import workload

        with pytest.raises(KeyError):
            workload("Nope")

    def test_run_json(self, capsys):
        import json

        assert main(["--scale", "0.2", "run", "H-Grep", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "H-Grep"
        assert "l1i_mpki" in payload["metrics"]
        assert payload["seed"] == 0
        assert payload["run_id"].startswith("run.H-Grep-")

    def test_run_writes_record(self, tmp_path, capsys):
        from repro.obs.registry import RunRegistry

        runs = str(tmp_path / "runs")
        assert main(
            ["--scale", "0.2", "--runs-dir", runs, "run", "H-Grep",
             "--seed", "4"]
        ) == 0
        assert "recorded" in capsys.readouterr().out
        record = RunRegistry(runs).latest("run.H-Grep")
        assert record is not None
        assert record.provenance["seed"] == 4
        assert record.kind == "run"
        assert "l1i_mpki" in record.metrics

    def test_system_json_emits_record_schema(self, tmp_path, capsys):
        import json

        runs = str(tmp_path / "runs")
        assert main(
            ["--scale", "0.2", "--runs-dir", runs, "system", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["experiment"] == "system"
        assert "summary.match_ratio" in payload["metrics"]
        assert payload["provenance"]["scale"] == 0.2

    def test_trace_writes_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main(
            ["--scale", "0.2", "trace", "S-WordCount",
             "--out", str(out), "--sample-interval", "0.05"]
        ) == 0
        assert "Perfetto" in capsys.readouterr().out
        trace = json.loads(out.read_text())
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert {"M", "X", "C"} <= phases
