"""Host hot-path profiler: attribution, quarantine, CLI record shape.

The ``repro profile`` verb answers "where does the host's wall-clock
go" — the simulator-side analogue of the paper's on-hardware profiling
runs.  The ISSUE.md acceptance bar is checked directly: at a small
scale the profile attributes at least 80% of measured self time, names
``repro.uarch`` frames, and every timing datum in the saved record is
quarantined outside ``metrics``.
"""

import glob
import json

import pytest

from repro.cli import main
from repro.errors import ProfilerError
from repro.experiments import ExperimentContext
from repro.obs import HostProfile, HotFunction, module_of, profile_call
from repro.obs.hostprof import DEFAULT_CAP, DEFAULT_COVERAGE


def make_entry(module, function, self_s, cum_s=None, calls=1):
    return HotFunction(
        module=module, function=function, file="f.py", line=1,
        calls=calls, self_s=self_s, cum_s=cum_s or self_s,
    )


class TestModuleOf:
    def test_repro_paths_become_dotted_modules(self):
        assert module_of("/x/src/repro/uarch/cache.py") == "repro.uarch.cache"
        assert module_of("/x/src/repro/obs/__init__.py") == "repro.obs"

    def test_builtin_marker(self):
        assert module_of("~") == "<builtin>"

    def test_foreign_paths_keep_bare_stem(self):
        assert module_of("/usr/lib/python3/json/decoder.py") == "decoder"


class TestHostProfile:
    def test_ranked_by_self_time(self):
        profile = HostProfile([
            make_entry("repro.uarch.cache", "access", 3.0),
            make_entry("repro.uarch.branch", "predict", 5.0),
            make_entry("json", "loads", 1.0),
        ])
        assert [e.function for e in profile.entries][:2] == [
            "predict", "access",
        ]
        assert profile.total_s == pytest.approx(9.0)
        assert profile.uarch_fraction() == pytest.approx(8.0 / 9.0)

    def test_entries_for_stops_at_coverage(self):
        profile = HostProfile([
            make_entry("m", "a", 90.0),
            make_entry("m", "b", 9.0),
            make_entry("m", "c", 1.0),
        ])
        chosen = profile.entries_for(coverage=0.95, cap=60)
        assert [e.function for e in chosen] == ["a", "b"]
        assert profile.attributed_fraction(coverage=0.95, cap=60) >= 0.95
        assert profile.entries_for(coverage=0.95, cap=1) == chosen[:1]

    def test_empty_profile_rejected(self):
        with pytest.raises(ProfilerError):
            HostProfile([])

    def test_timings_namespace_is_hostprof(self):
        profile = HostProfile([make_entry("repro.uarch.cache", "access", 2.0)])
        timings = profile.timings()
        assert all(key.startswith("hostprof.") for key in timings)
        assert timings["hostprof.total_s"] == pytest.approx(2.0)
        assert timings["hostprof.uarch_fraction"] == pytest.approx(1.0)
        assert "hostprof.self_s.repro.uarch.cache.access" in timings


class TestProfileCall:
    def test_returns_value_and_profile(self):
        value, profile = profile_call(sorted, [3, 1, 2])
        assert value == [1, 2, 3]
        assert profile.total_s >= 0.0

    def test_characterization_attributes_uarch_hot_path(self):
        context = ExperimentContext(scale=0.1, seed=0)
        counters, profile = profile_call(context.counters, "S-WordCount")
        assert counters.metric_dict()
        chosen = profile.entries_for(DEFAULT_COVERAGE, DEFAULT_CAP)
        assert profile.attributed_fraction() >= 0.8
        modules = {entry.module for entry in chosen}
        assert any(m.startswith("repro.uarch") for m in modules)
        assert profile.uarch_fraction() > 0.0

    def test_profiled_run_bit_identical_to_plain(self):
        plain = ExperimentContext(scale=0.1, seed=0).counters("S-Sort")
        profiled_ctx = ExperimentContext(scale=0.1, seed=0)
        profiled, _ = profile_call(profiled_ctx.counters, "S-Sort")
        assert (
            json.dumps(plain.metric_dict(), sort_keys=True)
            == json.dumps(profiled.metric_dict(), sort_keys=True)
        )

    def test_table_and_flame_render(self):
        context = ExperimentContext(scale=0.1, seed=0)
        _, profile = profile_call(context.counters, "S-WordCount")
        table = profile.render_table(top=5)
        assert "self (s)" in table
        flame = profile.render_flame()
        assert "#" in flame and "repro.uarch" in flame


class TestProfileCli:
    def test_profile_record_quarantines_wall_clock(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        code = main([
            "--scale", "0.1", "--runs-dir", str(runs),
            "profile", "S-WordCount",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "repro.uarch" in output
        assert "attributed" in output
        paths = glob.glob(str(runs / "profile.S-WordCount-*.json"))
        assert len(paths) == 1
        with open(paths[0]) as handle:
            record = json.load(handle)
        assert record["kind"] == "profile"
        assert any(
            key.startswith("hostprof.") for key in record["timings"]
        )
        # Determinism quarantine: no timing datum may leak into metrics.
        assert record["metrics"]
        assert not any(
            "hostprof" in key or key.endswith("_s")
            for key in record["metrics"]
        )

    def test_profile_json_output(self, tmp_path, capsys):
        code = main([
            "--scale", "0.1", "--runs-dir", str(tmp_path / "r"),
            "profile", "S-WordCount", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "profile"

    def test_profile_unknown_workload_exits_2(self, tmp_path, capsys):
        code = main([
            "--runs-dir", str(tmp_path / "r"), "profile", "NoSuch",
        ])
        assert code == 2
        assert "NoSuch" in capsys.readouterr().err

    def test_metrics_verb_reads_profile_records(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        assert main([
            "--scale", "0.1", "--runs-dir", runs, "profile", "S-WordCount",
        ]) == 0
        capsys.readouterr()
        assert main(["--runs-dir", runs, "metrics"]) == 0
        text = capsys.readouterr().out
        assert "repro_registry_records" in text
        assert 'kind="profile"' in text
        assert text.endswith("# EOF\n")
