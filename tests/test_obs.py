"""Observability tests: spans, telemetry, exporters, profiling hooks.

The pinned guarantees:

- With no tracer the scheduler's metrics are bit-identical to pre-obs
  results (full ``SystemMetrics`` equality against the plain wave loop).
- With a tracer attached, the metrics *totals* are still bit-identical —
  the timeline aggregation reads the same accounting fields in the same
  order — and every scheduled task attempt has a span.
- Exported Chrome trace events carry the trace_event schema, and span
  nesting is sound (child within parent interval, monotone sim time).
"""

import dataclasses
import json

import pytest

from repro.cluster import Cluster
from repro.cluster.events import Simulation
from repro.cluster.faults import FaultPlan, NodeCrash
from repro.obs import (
    ClusterTelemetry,
    CounterRegistry,
    PhaseProfiler,
    Tracer,
    phase,
    render_trace_summary,
    set_profiler,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.stacks.scheduler import (
    HADOOP_POLICY,
    TaskDescriptor,
    run_waves,
)

RATE = 1e9


def small_waves():
    wave_one = [
        TaskDescriptor(
            cpu_instructions=1.2e9,
            read_bytes=120_000_000 + i,
            write_bytes=30_000_000,
            net_bytes=4_000_000,
        )
        for i in range(6)
    ]
    wave_two = [
        TaskDescriptor(
            cpu_instructions=6e8,
            read_bytes=20_000_000,
            write_bytes=8_000_000,
            preferred_node=i,
        )
        for i in range(5)
    ]
    return [wave_one, wave_two]


class TestTracerCore:
    def test_span_ids_dense_and_parented(self):
        tracer = Tracer()
        parent = tracer.begin("job", "job")
        child = tracer.begin("map", "stage", parent=parent)
        assert child.parent_id == parent.span_id
        assert tracer.find(parent.span_id) is parent
        assert tracer.find(child.span_id) is child

    def test_end_twice_raises(self):
        tracer = Tracer()
        span = tracer.begin("x", "task")
        tracer.end(span)
        with pytest.raises(RuntimeError):
            tracer.end(span)

    def test_bad_sample_interval(self):
        with pytest.raises(ValueError):
            Tracer(sample_interval=0.0)
        with pytest.raises(ValueError):
            Tracer(sample_interval=-1.0)

    def test_clock_binding(self):
        tracer = Tracer()
        assert tracer.now == 0.0
        sim = Simulation(tracer=tracer)
        sim.timeout(2.5)
        sim.run()
        assert tracer.now == 2.5
        span = tracer.begin("late", "task")
        assert span.start == 2.5


class TestTracedRun:
    @pytest.fixture(scope="class")
    def traced(self):
        tracer = Tracer(sample_interval=0.01)
        cluster = Cluster(sim=Simulation(tracer=tracer))
        metrics = run_waves(
            cluster, small_waves(), RATE,
            job_name="wordcount", wave_names=["map", "reduce"],
        )
        return tracer, metrics

    def test_every_attempt_has_a_span(self, traced):
        tracer, _ = traced
        n_tasks = sum(len(w) for w in small_waves())
        assert len(tracer.spans_of("task")) == n_tasks
        assert len(tracer.spans_of("attempt")) == n_tasks

    def test_structural_spans(self, traced):
        tracer, _ = traced
        jobs = tracer.spans_of("job")
        stages = tracer.spans_of("stage")
        waves = tracer.spans_of("wave")
        assert [j.name for j in jobs] == ["wordcount"]
        assert [s.name for s in stages] == ["map", "reduce"]
        assert len(waves) == 2
        for stage in stages:
            assert stage.parent_id == jobs[0].span_id
        for wave in waves:
            assert tracer.find(wave.parent_id).category == "stage"

    def test_no_open_spans_after_run(self, traced):
        tracer, _ = traced
        assert tracer.open_spans() == []

    def test_nesting_invariants(self, traced):
        """Child spans lie within their parent's interval; time is
        monotone (begin order follows simulated time)."""
        tracer, _ = traced
        eps = 1e-9
        for span in tracer.spans:
            assert span.end is not None
            assert span.end >= span.start
            if span.parent_id is not None:
                parent = tracer.find(span.parent_id)
                assert parent.start - eps <= span.start
                assert span.end <= parent.end + eps
        starts = [s.start for s in tracer.spans]
        assert starts == sorted(starts)

    def test_attempts_attributed_to_nodes(self, traced):
        tracer, _ = traced
        node_names = {f"node{i}" for i in range(5)}
        for attempt in tracer.spans_of("attempt"):
            assert attempt.track in node_names
            assert attempt.args["node"] == attempt.track
            assert attempt.args["outcome"] == "ok"

    def test_counter_samples_cover_all_nodes(self, traced):
        tracer, _ = traced
        tracks = {s.track for s in tracer.samples}
        assert tracks == {f"node{i}" for i in range(5)}
        for sample in tracer.samples:
            assert set(sample.values) == {"cpu", "disk", "disk_mbps", "net_mbps"}
            assert sample.values["cpu"] >= 0.0

    def test_metrics_carry_timeline(self, traced):
        _, metrics = traced
        assert metrics.timeline is not None
        assert len(metrics.timeline) > 0
        series = metrics.timeline.utilization_series("node0", cores=6)
        assert series, "periodic sampling should yield windowed points"
        for _, cpu, disk in series:
            assert cpu >= 0.0 and disk >= 0.0


class TestBitIdentity:
    """Tracer-off runs match pre-obs output; tracer-on totals match too."""

    def run_plain(self, faults=None, policy=None):
        cluster = Cluster()
        return run_waves(
            cluster, small_waves(), RATE, faults=faults, policy=policy
        )

    def test_tracer_off_is_bit_identical(self):
        baseline = self.run_plain()
        again = self.run_plain()
        assert baseline == again  # full dataclass equality: every float

    def test_traced_totals_bit_identical_to_untraced(self):
        untraced = self.run_plain()
        tracer = Tracer(sample_interval=0.005)
        cluster = Cluster(sim=Simulation(tracer=tracer))
        traced = run_waves(cluster, small_waves(), RATE)
        # timeline is excluded from ==, so this compares all the floats.
        assert traced == untraced

    def test_traced_totals_bit_identical_under_faults(self):
        plan = FaultPlan(faults=(NodeCrash(node=1, at=0.02),))
        untraced = self.run_plain(
            faults=plan, policy=HADOOP_POLICY.scaled(0.001)
        )
        tracer = Tracer()
        cluster = Cluster(sim=Simulation(tracer=tracer))
        traced = run_waves(
            cluster, small_waves(), RATE,
            faults=FaultPlan(faults=(NodeCrash(node=1, at=0.02),)),
            policy=HADOOP_POLICY.scaled(0.001),
        )
        assert traced == untraced

    def test_timeline_equality_ignored_but_repr_hidden(self):
        tracer = Tracer()
        cluster = Cluster(sim=Simulation(tracer=tracer))
        metrics = run_waves(cluster, small_waves(), RATE)
        assert "timeline" not in repr(metrics)
        clone = dataclasses.replace(metrics, timeline=None)
        assert clone == metrics


class TestFaultAnnotations:
    def test_retry_and_fault_instants(self):
        plan = FaultPlan(faults=(NodeCrash(node=1, at=0.02),))
        tracer = Tracer()
        cluster = Cluster(sim=Simulation(tracer=tracer))
        metrics = run_waves(
            cluster, small_waves(), RATE,
            faults=plan, policy=HADOOP_POLICY.scaled(0.001),
        )
        names = {i.name for i in tracer.instants}
        assert "node down" in names
        if metrics.tasks_retried:
            assert "retry scheduled" in names
        interrupted = [
            s for s in tracer.spans_of("attempt")
            if s.args.get("outcome") == "interrupted"
        ]
        assert interrupted, "the crash should interrupt at least one attempt"


class TestChromeExport:
    @pytest.fixture(scope="class")
    def trace(self):
        tracer = Tracer(sample_interval=0.01)
        cluster = Cluster(sim=Simulation(tracer=tracer))
        run_waves(cluster, small_waves(), RATE, job_name="export-job")
        return tracer, to_chrome_trace(tracer)

    def test_event_schema(self, trace):
        tracer, chrome = trace
        events = chrome["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
            assert event["ph"] in ("X", "i", "C", "M")
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0
            if event["ph"] == "C":
                assert all(
                    isinstance(v, (int, float))
                    for v in event["args"].values()
                )

    def test_span_and_sample_counts(self, trace):
        tracer, chrome = trace
        events = chrome["traceEvents"]
        assert len([e for e in events if e["ph"] == "X"]) == len(tracer.spans)
        assert len([e for e in events if e["ph"] == "C"]) == len(tracer.samples)

    def test_thread_metadata_names_tracks(self, trace):
        tracer, chrome = trace
        events = chrome["traceEvents"]
        named = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "scheduler" in named
        assert {s.track for s in tracer.spans} <= named

    def test_json_round_trip(self, trace, tmp_path):
        tracer, _ = trace
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count

    def test_summary_renders(self, trace):
        tracer, _ = trace
        text = render_trace_summary(tracer)
        assert "Span summary" in text
        assert "export-job" in text


class TestTelemetry:
    def test_final_totals_match_live_counters(self):
        tracer = Tracer()
        cluster = Cluster(sim=Simulation(tracer=tracer))
        telemetry = cluster.attach_telemetry()
        assert isinstance(telemetry, ClusterTelemetry)
        assert cluster.attach_telemetry() is telemetry  # idempotent
        run_waves(cluster, small_waves(), RATE)
        totals = telemetry.finalize()
        assert totals.cpu_seconds == sum(n.cpu_time for n in cluster.nodes)
        assert totals.disk_bytes == sum(
            n.disk.total_bytes for n in cluster.nodes
        )
        assert totals.net_bytes == sum(
            n.nic.total_bytes for n in cluster.nodes
        )

    def test_final_totals_requires_all_nodes(self):
        from repro.obs.metrics import NodeSample, UtilizationTimeline

        timeline = UtilizationTimeline()
        timeline.append(
            NodeSample(
                time=1.0, node="node0", cpu_seconds=1.0,
                io_block_seconds=0.0, disk_busy_seconds=0.0,
                disk_weighted_seconds=0.0, disk_bytes=0, net_bytes=0,
            )
        )
        with pytest.raises(ValueError):
            timeline.final_totals(["node0", "node1"])


class TestCounterRegistry:
    def test_counters_accumulate(self):
        registry = CounterRegistry()
        registry.add("tasks", 2)
        registry.add("tasks", 3)
        assert registry.value("tasks") == 5
        assert "tasks" in registry
        assert len(registry) == 1

    def test_timer_records_seconds_and_calls(self):
        registry = CounterRegistry()
        with registry.timer("work"):
            pass
        with registry.timer("work"):
            pass
        assert registry.value("work.calls") == 2
        assert registry.value("work.seconds") >= 0.0
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)


class TestProfiler:
    def test_phase_noop_without_profiler(self):
        assert set_profiler(None) is None
        with phase("uarch.warmup"):
            pass  # must not raise or record anywhere

    def test_phase_records_when_installed(self):
        profiler = PhaseProfiler()
        previous = set_profiler(profiler)
        try:
            with phase("uarch.warmup"):
                pass
            with phase("uarch.measure"):
                pass
            with phase("uarch.measure"):
                pass
        finally:
            set_profiler(previous)
        assert profiler.calls("uarch.warmup") == 1
        assert profiler.calls("uarch.measure") == 2
        assert profiler.phases() == ["uarch.measure", "uarch.warmup"]
        assert len(profiler.report_lines()) == 2

    def test_sweep_phases_are_counted(self):
        from repro.uarch.profile import CodeFootprint, CodeRegion
        from repro.uarch.simulator import CacheSweepSimulator

        profiler = PhaseProfiler()
        previous = set_profiler(profiler)
        try:
            simulator = CacheSweepSimulator(
                sizes_kb=(16, 32), trace_refs=2_000
            )
            footprint = CodeFootprint(
                regions=[
                    CodeRegion("hot", 16 * 1024, weight=0.7, sequentiality=6),
                    CodeRegion("rest", 96 * 1024, weight=0.3, sequentiality=4),
                ]
            )
            simulator.instruction_curve("probe", footprint)
        finally:
            set_profiler(previous)
        assert profiler.calls("uarch.trace-gen") == 1
        # One warmup + one measured run per swept size.
        assert profiler.calls("uarch.warmup") == 2
        assert profiler.calls("uarch.measure") == 2


class TestExperimentTimings:
    def test_context_records_workload_timings(self):
        from repro.experiments import ExperimentContext

        context = ExperimentContext(scale=0.1)
        context.result("S-WordCount")
        context.result("S-WordCount")  # cached: timed once
        assert context.registry.value("workload.S-WordCount.calls") == 1
        with context.time_experiment("probe"):
            pass
        lines = context.timing_lines()
        assert any(line.startswith("workload.S-WordCount:") for line in lines)
        assert any(line.startswith("experiment.probe:") for line in lines)
