"""Tests for the MARSSx86-style cache sweep simulator."""

import pytest

from repro.uarch.profile import CodeFootprint, CodeRegion, DataFootprint
from repro.uarch.simulator import DEFAULT_SIZES_KB, CacheSweepSimulator, SweepResult


def footprint(total_kb=128):
    return CodeFootprint(
        [
            CodeRegion("hot", 16 * 1024, weight=0.7, sequentiality=6),
            CodeRegion("rest", (total_kb - 16) * 1024, weight=0.3, sequentiality=4),
        ]
    )


def data_model():
    return DataFootprint(
        stream_bytes=2 * 1024 * 1024,
        state_bytes=256 * 1024,
        state_fraction=0.1,
        hot_bytes=16 * 1024,
        hot_fraction=0.8,
    )


class TestSweep:
    def test_default_sizes_match_paper(self):
        assert DEFAULT_SIZES_KB == (16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)

    def test_instruction_curve_monotone_nonincreasing(self):
        simulator = CacheSweepSimulator(trace_refs=8000)
        curve = simulator.instruction_curve("t", footprint())
        for small, large in zip(curve.miss_ratios, curve.miss_ratios[1:]):
            assert large <= small + 1e-9

    def test_small_footprint_flattens_early(self):
        simulator = CacheSweepSimulator(trace_refs=8000)
        small = simulator.instruction_curve("small", footprint(64))
        large = simulator.instruction_curve("large", footprint(1024))
        assert small.at(128) < 0.02
        assert large.at(128) > small.at(128)
        # The larger footprint needs far more capacity to flatten.
        assert (large.knee_kb() or 10_000) > (small.knee_kb() or 0)

    def test_data_curve_runs(self):
        simulator = CacheSweepSimulator(trace_refs=6000)
        curve = simulator.data_curve("d", data_model())
        assert len(curve.miss_ratios) == len(DEFAULT_SIZES_KB)
        assert all(0.0 <= r <= 1.0 for r in curve.miss_ratios)

    def test_unified_curve_share_validation(self):
        simulator = CacheSweepSimulator(trace_refs=4000)
        with pytest.raises(ValueError):
            simulator.unified_curve("u", footprint(), data_model(), fetch_share=0.0)

    def test_at_unknown_size_raises(self):
        curve = SweepResult("x", [16, 32], [0.5, 0.4])
        with pytest.raises(KeyError):
            curve.at(64)

    def test_weighted_curve(self):
        a = SweepResult("a", [16, 32], [0.4, 0.2])
        b = SweepResult("b", [16, 32], [0.2, 0.0])
        merged = CacheSweepSimulator.weighted_curve("m", [(a, 3.0), (b, 1.0)])
        assert merged.miss_ratios[0] == pytest.approx(0.35)

    def test_weighted_curve_grid_mismatch(self):
        a = SweepResult("a", [16, 32], [0.4, 0.2])
        b = SweepResult("b", [16, 64], [0.2, 0.0])
        with pytest.raises(ValueError):
            CacheSweepSimulator.weighted_curve("m", [(a, 1.0), (b, 1.0)])

    def test_average_curves(self):
        a = SweepResult("a", [16], [0.4])
        b = SweepResult("b", [16], [0.2])
        merged = CacheSweepSimulator.average_curves("avg", [a, b])
        assert merged.miss_ratios[0] == pytest.approx(0.3)

    def test_knee_none_when_never_flat(self):
        curve = SweepResult("x", [16, 32], [0.5, 0.4])
        assert curve.knee_kb(threshold=0.01) is None
