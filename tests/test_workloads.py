"""Functional tests for the workload implementations and the registry."""

from collections import Counter

import pytest

from repro.workloads import (
    ALL_WORKLOADS,
    MPI_WORKLOADS,
    REPRESENTATIVE_WORKLOADS,
    workload,
)
from repro.workloads.base import (
    ApplicationCategory,
    DataBehavior,
    DataRatio,
    SystemBehavior,
    classify_system_behavior,
)
from repro.workloads.kernels import (
    GREP_PATTERN,
    hadoop_grep,
    hadoop_sort,
    hadoop_wordcount,
    mpi_sort,
    mpi_wordcount,
    spark_wordcount,
    wiki_documents,
)
from repro.workloads.ml import hadoop_bayes, mpi_kmeans, spark_kmeans, spark_pagerank
from repro.workloads.relational import ecommerce_tables, hive_difference
from repro.workloads.tpcds_queries import hive_tpcds_q3


SCALE = 0.25


class TestRegistry:
    def test_exactly_77_workloads(self):
        assert len(ALL_WORKLOADS) == 77

    def test_17_representatives(self):
        assert len(REPRESENTATIVE_WORKLOADS) == 17

    def test_represents_sums_to_77(self):
        assert sum(w.represents for w in REPRESENTATIVE_WORKLOADS) == 77

    def test_six_mpi_workloads(self):
        assert len(MPI_WORKLOADS) == 6
        assert {w.workload_id for w in MPI_WORKLOADS} == {
            "M-Bayes", "M-Kmeans", "M-PageRank", "M-Grep", "M-WordCount",
            "M-Sort",
        }

    def test_unique_ids(self):
        ids = [w.workload_id for w in ALL_WORKLOADS + MPI_WORKLOADS]
        assert len(set(ids)) == len(ids)

    def test_lookup(self):
        assert workload("H-Read").stack == "HBase"
        with pytest.raises(KeyError):
            workload("W-Nothing")

    def test_table2_order_and_counts(self):
        expected_head = [
            ("H-Read", 10), ("H-Difference", 9), ("I-SelectQuery", 9),
            ("H-TPC-DS-query3", 9), ("S-WordCount", 8), ("I-OrderBy", 7),
            ("H-Grep", 7),
        ]
        actual = [
            (w.workload_id, w.represents) for w in REPRESENTATIVE_WORKLOADS[:7]
        ]
        assert actual == expected_head

    def test_every_entry_has_dataset_from_table1(self):
        from repro.datagen import DATASETS

        for definition in ALL_WORKLOADS:
            assert definition.dataset in DATASETS


class TestWordCountFamily:
    def test_all_stacks_agree_on_counts(self):
        docs = wiki_documents(SCALE, seed=0)
        reference = Counter()
        for doc in docs:
            reference.update(doc.split())

        hadoop_counts = dict(hadoop_wordcount(scale=SCALE).output)
        spark_counts = dict(spark_wordcount(scale=SCALE).output)
        assert hadoop_counts == dict(reference)
        assert spark_counts == dict(reference)

        mpi_result = mpi_wordcount(scale=SCALE)
        # Every rank returns the global distinct-word count.
        assert set(mpi_result.output) == {len(reference)}

    def test_profiles_show_stack_gradient(self):
        hadoop = hadoop_wordcount(scale=SCALE)
        mpi = mpi_wordcount(scale=SCALE)
        hadoop_code = hadoop.profile.code.total_bytes
        mpi_code = mpi.profile.code.total_bytes
        # §5.4: Hadoop's instruction footprint is far larger than MPI's.
        assert hadoop_code > 3 * mpi_code


class TestGrepAndSort:
    def test_grep_output_much_smaller_than_input(self):
        result = hadoop_grep(scale=SCALE)
        behavior = DataBehavior.from_meter(result.meter)
        assert behavior.output in (DataRatio.MUCH_LESS, DataRatio.LESS)

    def test_grep_match_count_matches_reference(self):
        docs = wiki_documents(SCALE, seed=0)
        expected = sum(GREP_PATTERN in doc for doc in docs)
        result = hadoop_grep(scale=SCALE)
        assert len(result.output) == expected

    def test_sort_outputs_sorted(self):
        result = hadoop_sort(scale=SCALE)
        keys = [k for k, _v in result.output]
        # Keys are sorted within each reduce partition.
        assert len(keys) > 0
        mpi_result = mpi_sort(scale=SCALE)
        for rank_output in mpi_result.output:
            assert rank_output == sorted(rank_output)

    def test_mpi_sort_is_global_partition_sort(self):
        result = mpi_sort(scale=SCALE)
        flattened = [r for rank in result.output for r in rank]
        # Concatenation of rank outputs is fully sorted (sample sort).
        assert flattened == sorted(flattened)
        # Nothing lost.
        from repro.workloads.kernels import _sort_records

        assert sorted(flattened) == sorted(_sort_records(SCALE, 0))


class TestMlWorkloads:
    def test_kmeans_produces_k_clusters(self):
        result = spark_kmeans(scale=SCALE, k=4, iterations=3)
        assert set(result.output) <= set(range(4))
        assert len(set(result.output)) >= 2

    def test_mpi_kmeans_assignment_shapes(self):
        result = mpi_kmeans(scale=SCALE, k=4, iterations=3)
        assert sum(len(r) for r in result.output) > 0

    def test_pagerank_scores_positive_and_ordered(self):
        result = spark_pagerank(scale=SCALE, iterations=4)
        scores = [score for _node, score in result.output]
        assert all(score > 0 for score in scores)
        assert scores == sorted(scores, reverse=True)

    def test_pagerank_output_larger_than_input(self):
        result = spark_pagerank(scale=SCALE, iterations=4)
        behavior = DataBehavior.from_meter(result.meter)
        # Table 2: Output > Input for S-PageRank.
        assert behavior.output in (DataRatio.GREATER, DataRatio.EQUAL)

    def test_bayes_beats_chance(self):
        result = hadoop_bayes(scale=1.0)
        assert result.output["accuracy"] > 0.5  # 5 classes, chance = 0.2


class TestRelationalWorkloads:
    def test_difference_excludes_old_orders(self):
        result = hive_difference(scale=SCALE)
        tables = ecommerce_tables(SCALE, 0)
        old_ids = {r["order_id"] for r in tables["old_orders"]}
        assert all(row["order_id"] not in old_ids for row in result.output)

    def test_tpcds_q3_grouped_and_ordered(self):
        result = hive_tpcds_q3(scale=0.3)
        totals = [row["sum_agg"] for row in result.output]
        assert totals == sorted(totals, reverse=True)
        assert len(result.output) <= 100


class TestClassificationRules:
    def test_cpu_intensive_rule(self):
        assert (
            classify_system_behavior(0.9, 0.0, 0.0)
            is SystemBehavior.CPU_INTENSIVE
        )

    def test_io_intensive_by_weighted_io(self):
        assert (
            classify_system_behavior(0.3, 0.0, 12.0)
            is SystemBehavior.IO_INTENSIVE
        )

    def test_io_intensive_by_iowait(self):
        assert (
            classify_system_behavior(0.5, 0.25, 0.0)
            is SystemBehavior.IO_INTENSIVE
        )

    def test_iowait_needs_low_cpu(self):
        # CPU 70% with high iowait is NOT I/O-intensive per the rule.
        assert classify_system_behavior(0.7, 0.25, 0.0) is SystemBehavior.HYBRID

    def test_hybrid_default(self):
        assert classify_system_behavior(0.7, 0.1, 1.0) is SystemBehavior.HYBRID

    def test_invalid_cpu(self):
        with pytest.raises(ValueError):
            classify_system_behavior(1.2, 0.0, 0.0)


class TestDataRatioBuckets:
    @pytest.mark.parametrize(
        "ratio,expected",
        [
            (0.001, DataRatio.MUCH_LESS),
            (0.5, DataRatio.LESS),
            (1.0, DataRatio.EQUAL),
            (1.09, DataRatio.EQUAL),
            (1.2, DataRatio.GREATER),
        ],
    )
    def test_bucketing(self, ratio, expected):
        assert DataRatio.from_ratio(ratio) is expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DataRatio.from_ratio(-0.1)

    def test_describe(self):
        behavior = DataBehavior(DataRatio.MUCH_LESS, DataRatio.NONE)
        assert behavior.describe() == "Output<<Input and no intermediate"
