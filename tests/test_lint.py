"""Tests for the determinism sanitizer (``repro.analysis`` + ``repro lint``).

Three layers: per-rule fixtures (each snippet triggers its rule exactly
once and a clean twin triggers nothing), the baseline/suppression
machinery, and the CLI acceptance criteria — reintroducing the PR-4
shuffle bug or an unseeded Random() must fail the gate with the right
rule ID in ``--json`` output.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    ALL_RULES,
    Finding,
    baseline_counts,
    canonical_record_bytes,
    default_baseline_path,
    lint_file,
    lint_tree,
    load_baseline,
    new_findings,
    rule_catalog,
    save_baseline,
)
from repro.analysis.baseline import stale_entries
from repro.analysis.dynamic import divergent_paths
from repro.cli import main
from repro.errors import LintBaselineError, SimulationError


def lint_source(tmp_path, source, module="repro.fixture"):
    """Lint one dedented snippet under a chosen module name."""
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(source))
    return lint_file(str(path), module)


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# --------------------------------------------------------------------------
# One fixture per rule: exactly one finding each.
# --------------------------------------------------------------------------

class TestRuleFixtures:
    def test_det001_builtin_hash(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def partition(key, n):
                return hash(key) % n
        """)
        assert rule_ids(findings) == ["DET001"]
        assert "PYTHONHASHSEED" in findings[0].message

    def test_det001_allows_stable_hash_wrapper_and_numeric(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def stable_hash(key):
                return hash(key)

            CONSTANT = hash(42)
        """)
        assert findings == []

    def test_det001_resolves_aliased_import(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            from builtins import hash as h

            def partition(key, n):
                return h(key) % n
        """)
        assert rule_ids(findings) == ["DET001"]

    def test_det002_unseeded_random(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import random

            def make_rng():
                return random.Random()
        """)
        assert rule_ids(findings) == ["DET002"]

    def test_det002_global_stream(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            from random import shuffle

            def scramble(items):
                shuffle(items)
        """)
        assert rule_ids(findings) == ["DET002"]

    def test_det002_seeded_random_is_clean(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import random

            def make_rng(seed):
                return random.Random(seed)
        """)
        assert findings == []

    def test_det003_wall_clock(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import time

            def stamp():
                return time.time()
        """)
        assert rule_ids(findings) == ["DET003"]

    def test_det003_exempt_in_quarantined_module(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import time

            def stamp():
                return time.time()
        """, module="repro.obs.profiler")
        assert findings == []

    def test_det003_quarantine_covers_observability_modules(self, tmp_path):
        for module in (
            "repro.obs.hostprof",
            "repro.obs.stream",
            "repro.obs.perf",
            "repro.exec.tracing",
        ):
            findings, _ = lint_source(tmp_path, """
                import time

                def stamp():
                    return time.time()
            """, module=module)
            assert findings == [], module

    def test_det003_observatory_render_path_stays_clock_free(self, tmp_path):
        # Only the bench harness (repro.obs.perf) may read the clock;
        # the aggregation and rendering layers must stay deterministic,
        # so DET003 still fires there.
        for module in (
            "repro.obs.observatory",
            "repro.obs.dashboard",
            "repro.obs.stats",
        ):
            findings, _ = lint_source(tmp_path, """
                import time

                def stamp():
                    return time.time()
            """, module=module)
            assert rule_ids(findings) == ["DET003"], module

    def test_det003_exec_quarantine_is_not_blanket(self, tmp_path):
        # Only the supervisor/pool/tracing side of repro.exec may touch
        # wall-clock; cells, checkpoint and merge produce record bytes,
        # so a clock read there must still fire.
        findings, _ = lint_source(tmp_path, """
            import time

            def stamp():
                return time.time()
        """, module="repro.exec.cells")
        assert rule_ids(findings) == ["DET003"]

    def test_det004_set_iteration_into_list(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def collect(items):
                seen = set(items)
                out = []
                for item in seen:
                    out.append(item)
                return out
        """)
        assert rule_ids(findings) == ["DET004"]

    def test_det004_list_of_set_emits_order(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def emit(a, b):
                return list(set(a) | set(b))
        """)
        assert rule_ids(findings) == ["DET004"]

    def test_det004_sorted_iteration_is_clean(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def collect(items):
                seen = set(items)
                return [item for item in sorted(seen)]
        """)
        assert findings == []

    def test_det004_scope_keyed_no_cross_function_taint(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def builds_a_set():
                rules = {1, 2, 3}
                return sorted(rules)

            def unrelated(rules):
                return list(rules)
        """)
        assert findings == []

    def test_det005_unsorted_listdir(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import os

            def names(root):
                return [n for n in os.listdir(root)]
        """)
        assert rule_ids(findings) == ["DET005"]

    def test_det005_sorted_listing_is_clean(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import os

            def names(root):
                return sorted(n for n in os.listdir(root) if n.endswith(".json"))
        """)
        assert findings == []

    def test_pur001_module_state_in_engine_module(self, tmp_path):
        source = """
            CACHE = {}

            def remember(key, value):
                CACHE[key] = value
        """
        findings, _ = lint_source(tmp_path, source, module="repro.cluster.state")
        assert rule_ids(findings) == ["PUR001"]
        # The same code outside the engine packages is not PUR001's business.
        clean, _ = lint_source(tmp_path, source, module="repro.obs.state")
        assert clean == []

    def test_err001_bare_except(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def swallow(fn):
                try:
                    fn()
                except:
                    pass
        """)
        assert rule_ids(findings) == ["ERR001"]

    def test_err001_raise_runtimeerror(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def fail():
                raise RuntimeError("anonymous failure")
        """)
        assert rule_ids(findings) == ["ERR001"]

    def test_imp001_unused_import(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import json
            import os

            def cwd():
                return os.getcwd()
        """)
        assert rule_ids(findings) == ["IMP001"]
        assert "json" in findings[0].message

    def test_syn000_unparseable_file(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def broken(:
                pass
        """)
        assert rule_ids(findings) == ["SYN000"]

    def test_every_rule_documented(self):
        docs = {doc.rule_id for doc in rule_catalog()}
        assert docs == {rule.rule_id for rule in ALL_RULES}


# --------------------------------------------------------------------------
# Suppression + baseline machinery.
# --------------------------------------------------------------------------

class TestSuppressionAndBaseline:
    def test_inline_suppression(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """
            def partition(key, n):
                return hash(key) % n  # repro: allow[DET001]
        """)
        assert findings == []
        assert suppressed == 1

    def test_suppression_comment_on_preceding_line(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """
            def partition(key, n):
                # repro: allow[DET001]
                return hash(key) % n
        """)
        assert findings == []
        assert suppressed == 1

    def test_suppression_is_rule_specific(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """
            def partition(key, n):
                return hash(key) % n  # repro: allow[DET002]
        """)
        assert rule_ids(findings) == ["DET001"]
        assert suppressed == 0

    def test_baseline_round_trip(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def partition(key, n):
                return hash(key) % n
        """)
        path = tmp_path / "baseline.json"
        assert save_baseline(str(path), findings) == 1
        baseline = load_baseline(str(path))
        assert baseline == baseline_counts(findings)
        assert new_findings(findings, baseline) == []

    def test_new_findings_are_multiset_extras(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def a(key):
                return hash(key)

            def b(key):
                return hash(key)
        """)
        assert len(findings) == 2
        baseline = baseline_counts(findings[:1])
        # Both findings share a key (same stripped line text); only the
        # extra copy beyond the baselined count is new.
        fresh = new_findings(findings, baseline)
        assert len(fresh) == 1

    def test_baseline_key_survives_line_shift(self, tmp_path):
        before, _ = lint_source(tmp_path, """
            def partition(key, n):
                return hash(key) % n
        """)
        after, _ = lint_source(tmp_path, """
            # an unrelated comment pushes everything down


            def partition(key, n):
                return hash(key) % n
        """)
        assert before[0].line != after[0].line
        assert new_findings(after, baseline_counts(before)) == []

    def test_stale_entries_reported(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def partition(key, n):
                return hash(key) % n
        """)
        baseline = baseline_counts(findings)
        assert stale_entries([], baseline) == list(baseline)

    def test_load_baseline_rejects_missing_and_malformed(self, tmp_path):
        with pytest.raises(LintBaselineError):
            load_baseline(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(LintBaselineError):
            load_baseline(str(bad))
        wrong_version = tmp_path / "version.json"
        wrong_version.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(LintBaselineError):
            load_baseline(str(wrong_version))


# --------------------------------------------------------------------------
# The live tree and the CLI gate.
# --------------------------------------------------------------------------

class TestLiveTreeAndCli:
    def test_live_tree_has_no_unbaselined_findings(self):
        report = lint_tree()
        baseline_path = default_baseline_path()
        assert baseline_path is not None, "tools/lint_baseline.json missing"
        baseline = load_baseline(baseline_path)
        fresh = new_findings(report.findings, baseline)
        assert fresh == [], "\n".join(f.render() for f in fresh)
        assert report.files_checked > 50

    def test_cli_lint_clean_tree_exits_zero(self, capsys):
        baseline_path = default_baseline_path()
        assert main(["lint", "--baseline", baseline_path]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out

    def test_cli_rules_catalog(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out

    def _write_buggy_tree(self, tmp_path):
        """A fixture package reintroducing the PR-4 bug class."""
        pkg = tmp_path / "fixtures"
        pkg.mkdir()
        (pkg / "shuffle.py").write_text(textwrap.dedent("""
            import random


            def partition(key, n):
                return hash(key) % n


            def scramble(items):
                rng = random.Random()
                random.shuffle(items)
                return rng
        """))
        return pkg

    def test_cli_gate_fails_on_reintroduced_bugs(self, tmp_path, capsys):
        pkg = self._write_buggy_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        save_baseline(str(baseline), [])
        code = main(
            ["lint", str(pkg), "--baseline", str(baseline), "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        fresh = [entry["rule"] for entry in payload["new"]]
        assert "DET001" in fresh
        assert "DET002" in fresh
        assert payload["ok"] is False

    def test_cli_update_baseline_then_clean(self, tmp_path, capsys):
        pkg = self._write_buggy_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["lint", str(pkg), "--baseline", str(baseline),
             "--update-baseline"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["lint", str(pkg), "--baseline", str(baseline)]
        ) == 0
        assert "0 new" in capsys.readouterr().out

    def test_cli_missing_baseline_is_usage_error(self, tmp_path, capsys):
        pkg = self._write_buggy_tree(tmp_path)
        code = main(
            ["lint", str(pkg), "--baseline", str(tmp_path / "nope.json")]
        )
        assert code == 2


# --------------------------------------------------------------------------
# Dynamic cross-check plumbing (record canonicalisation + diffing).
# --------------------------------------------------------------------------

class TestDynamicPlumbing:
    RECORD = {
        "experiment": "run.H-WordCount",
        "metrics": {"ipc": 1.25, "system.elapsed": 0.4},
        "run_id": "abc-123",
        "created_at": "2026-01-01T00:00:00Z",
        "timings": {"wall": 1.9},
    }

    def test_canonical_bytes_strip_volatile_fields(self):
        other = dict(self.RECORD, run_id="xyz", created_at="2030-12-31",
                     timings={"wall": 99.0})
        assert canonical_record_bytes(self.RECORD) == canonical_record_bytes(
            other
        )

    def test_canonical_bytes_see_metric_changes(self):
        other = dict(self.RECORD, metrics={"ipc": 1.26, "system.elapsed": 0.4})
        assert canonical_record_bytes(self.RECORD) != canonical_record_bytes(
            other
        )

    def test_divergent_paths_are_dotted_and_sorted(self):
        a = {"metrics": {"ipc": 1.0, "gflops": 2.0}, "kind": "run"}
        b = {"metrics": {"ipc": 1.5, "gflops": 2.0}, "extra": True}
        assert divergent_paths(a, b) == ["extra", "kind", "metrics.ipc"]


# --------------------------------------------------------------------------
# Regression tests for lint-driven fixes (satellite: fix, don't baseline).
# --------------------------------------------------------------------------

class TestLintDrivenFixes:
    def test_tracer_double_end_raises_typed_error(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        span = tracer.begin("phase", "test")
        tracer.end(span)
        with pytest.raises(SimulationError):
            tracer.end(span)

    def test_workload_registry_duplicate_check_is_typed(self):
        # The registry's integrity check raises the typed hierarchy; the
        # live registry must simply import and pass it.
        from repro.workloads.registry import ALL_WORKLOADS, MPI_WORKLOADS

        catalog = ALL_WORKLOADS + MPI_WORKLOADS
        assert len({w.workload_id for w in catalog}) == len(catalog)

    def test_bfs_frontier_order_is_deterministic(self):
        # extra.py's BFS used to iterate raw sets; the fix sorts the
        # frontier, so repeated runs agree exactly.
        from repro.workloads.registry import workload

        definition = workload("S-BFS")
        first = definition.runner(scale=0.2, seed=3)
        second = definition.runner(scale=0.2, seed=3)
        assert first.output == second.output
        assert (
            first.meter.kernel_mix().total == second.meter.kernel_mix().total
        )


class TestSwallowedIORule:
    MODULE = "repro.fsio"  # inside the durable-write tier

    def test_err002_swallowed_oserror(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def write(path):
                try:
                    open(path, "w").write("x")
                except OSError:
                    pass
        """, module=self.MODULE)
        assert "ERR002" in rule_ids(findings)

    def test_err002_broad_tuple_member(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def write(path):
                try:
                    open(path, "w").write("x")
                except (ValueError, Exception):
                    return None
        """, module=self.MODULE)
        assert "ERR002" in rule_ids(findings)

    def test_err002_clean_when_reraised(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def write(path):
                try:
                    open(path, "w").write("x")
                except OSError:
                    raise
        """, module=self.MODULE)
        assert "ERR002" not in rule_ids(findings)

    def test_err002_clean_when_error_is_used(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            import sys

            def write(path):
                try:
                    open(path, "w").write("x")
                except OSError as error:
                    sys.stderr.write(str(error))
        """, module=self.MODULE)
        assert "ERR002" not in rule_ids(findings)

    def test_err002_narrow_exception_is_fine(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def remove(path):
                import os
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
        """, module=self.MODULE)
        assert "ERR002" not in rule_ids(findings)

    def test_err002_scoped_to_durable_modules(self, tmp_path):
        findings, _ = lint_source(tmp_path, """
            def write(path):
                try:
                    open(path, "w").write("x")
                except OSError:
                    pass
        """, module="repro.analysis.sensitivity")
        assert "ERR002" not in rule_ids(findings)

    def test_err002_suppressed_by_allow_comment(self, tmp_path):
        findings, suppressed = lint_source(tmp_path, """
            def probe(path):
                try:
                    return open(path).read()
                except OSError:  # repro: allow[ERR002] — read-path probe
                    return None
        """, module=self.MODULE)
        assert "ERR002" not in rule_ids(findings)
        assert suppressed >= 1
