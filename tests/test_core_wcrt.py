"""Tests for the WCRT pipeline: normalisation, PCA, K-means, subsetting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    Analyzer,
    NormalizationModel,
    choose_k_bic,
    fit_kmeans,
    fit_pca,
    gaussian_normalize,
    reduce_workloads,
)
from repro.core.kmeans import bic_score


def blobs(n_clusters=3, per_cluster=20, dims=5, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10, 10, size=(n_clusters, dims))
    points = np.vstack(
        [
            center + rng.normal(0, spread, size=(per_cluster, dims))
            for center in centers
        ]
    )
    labels = np.repeat(np.arange(n_clusters), per_cluster)
    return points, labels


class TestNormalize:
    def test_zero_mean_unit_std(self):
        matrix = np.random.default_rng(1).normal(5, 3, size=(40, 6))
        normalized, _model = gaussian_normalize(matrix)
        assert np.allclose(normalized.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(normalized.std(axis=0), 1, atol=1e-9)

    def test_constant_column_safe(self):
        matrix = np.ones((10, 3))
        matrix[:, 0] = np.arange(10)
        normalized, _model = gaussian_normalize(matrix)
        assert np.all(np.isfinite(normalized))
        assert np.allclose(normalized[:, 1], 0)

    def test_inverse_roundtrip(self):
        matrix = np.random.default_rng(2).normal(0, 2, size=(20, 4))
        normalized, model = gaussian_normalize(matrix)
        assert np.allclose(model.inverse(normalized), matrix)

    def test_transform_shape_check(self):
        matrix = np.random.default_rng(3).normal(size=(10, 4))
        _, model = gaussian_normalize(matrix)
        with pytest.raises(ValueError):
            model.transform(np.zeros((5, 3)))

    def test_rejects_nonfinite(self):
        matrix = np.zeros((5, 2))
        matrix[0, 0] = np.nan
        with pytest.raises(ValueError):
            gaussian_normalize(matrix)

    def test_rejects_single_row(self):
        with pytest.raises(ValueError):
            gaussian_normalize(np.zeros((1, 3)))

    @given(
        arrays(
            np.float64, (12, 4),
            elements=st.floats(min_value=-1e4, max_value=1e4),
        ).filter(lambda m: m.std(axis=0).min() > 1e-6)
    )
    @settings(max_examples=20, deadline=None)
    def test_normalization_idempotent_statistics(self, matrix):
        normalized, _ = gaussian_normalize(matrix)
        renormalized, _ = gaussian_normalize(normalized)
        assert np.allclose(normalized, renormalized, atol=1e-6)


class TestPca:
    def test_explained_variance_descending(self):
        matrix = np.random.default_rng(4).normal(size=(50, 8))
        model = fit_pca(matrix, n_components=5)
        variances = model.explained_variance
        assert all(a >= b - 1e-12 for a, b in zip(variances, variances[1:]))

    def test_components_orthonormal(self):
        matrix = np.random.default_rng(5).normal(size=(60, 6))
        model = fit_pca(matrix, n_components=4)
        gram = model.components @ model.components.T
        assert np.allclose(gram, np.eye(4), atol=1e-8)

    def test_variance_threshold_selects_few_for_lowrank_data(self):
        rng = np.random.default_rng(6)
        basis = rng.normal(size=(2, 10))
        coefficients = rng.normal(size=(100, 2))
        matrix = coefficients @ basis + rng.normal(0, 1e-4, size=(100, 10))
        model = fit_pca(matrix, variance_to_keep=0.95)
        assert model.n_components <= 3

    def test_projection_reconstruction(self):
        matrix = np.random.default_rng(7).normal(size=(30, 5))
        model = fit_pca(matrix, n_components=5)
        projected = model.transform(matrix)
        reconstructed = model.inverse_transform(projected)
        assert np.allclose(reconstructed, matrix, atol=1e-8)

    def test_rejects_flat_matrix(self):
        with pytest.raises(ValueError):
            fit_pca(np.zeros((10, 3)))


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points, truth = blobs(n_clusters=4, seed=8)
        model = fit_kmeans(points, k=4, seed=1)
        # Each true cluster maps to exactly one predicted label.
        for cluster in range(4):
            labels = set(model.labels[truth == cluster])
            assert len(labels) == 1

    def test_inertia_decreases_with_k(self):
        points, _ = blobs(n_clusters=4, seed=9)
        coarse = fit_kmeans(points, k=2, seed=1)
        fine = fit_kmeans(points, k=8, seed=1)
        assert fine.inertia < coarse.inertia

    def test_predict_consistent_with_labels(self):
        points, _ = blobs(seed=10)
        model = fit_kmeans(points, k=3, seed=2)
        assert np.array_equal(model.predict(points), model.labels)

    def test_k_bounds(self):
        points, _ = blobs(seed=11)
        with pytest.raises(ValueError):
            fit_kmeans(points, k=0)
        with pytest.raises(ValueError):
            fit_kmeans(points, k=len(points) + 1)

    def test_k_equals_n(self):
        points = np.random.default_rng(12).normal(size=(6, 3))
        model = fit_kmeans(points, k=6, seed=1)
        assert model.inertia == pytest.approx(0.0, abs=1e-12)

    def test_bic_prefers_true_k(self):
        points, _ = blobs(n_clusters=3, per_cluster=30, seed=13)
        chosen = choose_k_bic(points, k_min=2, k_max=8, seed=1)
        assert chosen == 3

    def test_bic_score_finite(self):
        points, _ = blobs(seed=14)
        model = fit_kmeans(points, k=3, seed=1)
        assert np.isfinite(bic_score(points, model))


class TestReduceWorkloads:
    def test_representatives_cover_population(self):
        points, _ = blobs(n_clusters=5, per_cluster=10, seed=15)
        names = [f"w{i}" for i in range(len(points))]
        result = reduce_workloads(names, points, k=5, seed=3)
        assert result.n_clusters == 5
        covered = sorted(
            name for members in result.clusters.values() for name in members
        )
        assert covered == sorted(names)

    def test_represents_counts(self):
        points, _ = blobs(n_clusters=2, per_cluster=8, seed=16)
        names = [f"w{i}" for i in range(len(points))]
        result = reduce_workloads(names, points, k=2, seed=3)
        assert sum(result.represents(r) for r in result.representatives) == 16

    def test_representative_is_member(self):
        points, _ = blobs(seed=17)
        names = [f"w{i}" for i in range(len(points))]
        result = reduce_workloads(names, points, k=3, seed=3)
        for representative, members in result.clusters.items():
            assert representative in members

    def test_cluster_of(self):
        points, _ = blobs(seed=18)
        names = [f"w{i}" for i in range(len(points))]
        result = reduce_workloads(names, points, k=3, seed=3)
        assert result.cluster_of("w0") in result.representatives
        with pytest.raises(KeyError):
            result.cluster_of("missing")

    def test_duplicate_names_rejected(self):
        points, _ = blobs(seed=19)
        with pytest.raises(ValueError):
            reduce_workloads(["dup"] * len(points), points, k=3)

    def test_bic_mode(self):
        points, _ = blobs(n_clusters=3, per_cluster=15, seed=20)
        names = [f"w{i}" for i in range(len(points))]
        result = reduce_workloads(names, points, k=None, seed=3)
        assert result.n_clusters == 3

    def test_ordered_by_cluster_size(self):
        rng = np.random.default_rng(21)
        big = rng.normal(0, 0.05, size=(20, 4))
        small = rng.normal(10, 0.05, size=(5, 4))
        points = np.vstack([big, small])
        names = [f"w{i}" for i in range(25)]
        result = reduce_workloads(names, points, k=2, seed=3)
        sizes = [result.represents(r) for r in result.representatives]
        assert sizes == sorted(sizes, reverse=True)


class TestAnalyzer:
    def make_record(self, workload_id, seed):
        from repro.core.profiler import ProfileRecord
        from repro.uarch.counters import METRIC_NAMES

        rng = np.random.default_rng(seed)
        return ProfileRecord(
            workload_id=workload_id,
            metrics=rng.normal(size=len(METRIC_NAMES)),
            counters=None,
        )

    def test_collect_and_matrix(self):
        analyzer = Analyzer()
        analyzer.collect_all([self.make_record(f"w{i}", i) for i in range(5)])
        assert analyzer.n_records == 5
        assert analyzer.metric_matrix().shape == (5, 45)

    def test_duplicate_rejected(self):
        analyzer = Analyzer()
        analyzer.collect(self.make_record("w", 1))
        with pytest.raises(ValueError):
            analyzer.collect(self.make_record("w", 2))

    def test_summary(self):
        analyzer = Analyzer()
        analyzer.collect_all([self.make_record(f"w{i}", i) for i in range(4)])
        summary = analyzer.metric_summary()
        assert set(summary["ipc"]) == {"mean", "std", "min", "max"}

    def test_render_metric_table(self):
        analyzer = Analyzer()
        analyzer.collect_all([self.make_record(f"w{i}", i) for i in range(3)])
        text = analyzer.render_metric_table(["ipc", "l1i_mpki"])
        assert "w0" in text and "ipc" in text

    def test_render_distribution(self):
        analyzer = Analyzer()
        analyzer.collect_all([self.make_record(f"w{i}", i) for i in range(6)])
        text = analyzer.render_distribution("ipc", bins=4)
        assert "distribution" in text

    def test_reduce_small_population(self):
        analyzer = Analyzer()
        analyzer.collect_all([self.make_record(f"w{i}", i) for i in range(10)])
        result = analyzer.reduce(k=3, seed=1)
        assert result.n_clusters == 3

    def test_empty_matrix_raises(self):
        with pytest.raises(ValueError):
            Analyzer().metric_matrix()


class TestPcaScatter:
    def make_analyzer(self, n=12):
        import numpy as np
        from repro.core.profiler import ProfileRecord

        rng = np.random.default_rng(1)
        analyzer = Analyzer()
        for i in range(n):
            analyzer.collect(
                ProfileRecord(f"w{i}", rng.normal(size=45) + (i % 3) * 4, None)
            )
        return analyzer

    def test_scatter_renders_all_points(self):
        analyzer = self.make_analyzer()
        reduction = analyzer.reduce(k=3, seed=1)
        text = analyzer.render_pca_scatter(reduction, width=40, height=12)
        assert "PCA scatter" in text
        assert "legend:" in text
        # Three clusters -> at most three distinct letters on the grid.
        body = "".join(line.strip("|") for line in text.splitlines()[1:-1])
        letters = {c for c in body if c.isalpha()}
        assert 1 <= len(letters) <= 3

    def test_scatter_defaults_to_fresh_reduction(self):
        analyzer = self.make_analyzer()
        text = analyzer.render_pca_scatter(analyzer.reduce(k=2, seed=0))
        assert text.count("\n") > 5
