"""Unit tests for the instruction taxonomy."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.uarch.isa import (
    INSTRUCTION_CLASSES,
    InstructionClass,
    InstructionMix,
    IntBreakdown,
    combine_breakdowns,
    data_movement_share,
    data_movement_with_branches,
    validate_mix_mapping,
)


class TestInstructionMix:
    def test_empty_mix_has_zero_total(self):
        assert InstructionMix().total == 0

    def test_from_counts(self):
        mix = InstructionMix.from_counts(load=10, branch=5)
        assert mix.counts[InstructionClass.LOAD] == 10
        assert mix.counts[InstructionClass.BRANCH] == 5
        assert mix.total == 15

    def test_from_ratios_requires_unit_sum(self):
        with pytest.raises(ValueError):
            InstructionMix.from_ratios(100, load=0.5, store=0.4)

    def test_from_ratios_scales_total(self):
        mix = InstructionMix.from_ratios(
            200, load=0.25, store=0.25, branch=0.5
        )
        assert mix.counts[InstructionClass.BRANCH] == 100

    def test_ratio_of_empty_mix_is_zero(self):
        assert InstructionMix().ratio(InstructionClass.LOAD) == 0.0

    def test_addition_accumulates(self):
        a = InstructionMix.from_counts(load=1)
        b = InstructionMix.from_counts(load=2, branch=3)
        c = a + b
        assert c.counts[InstructionClass.LOAD] == 3
        assert c.counts[InstructionClass.BRANCH] == 3

    def test_iadd(self):
        mix = InstructionMix.from_counts(integer=4)
        mix += InstructionMix.from_counts(integer=6)
        assert mix.counts[InstructionClass.INTEGER] == 10

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            InstructionMix.from_counts(load=1).scaled(-1)

    def test_data_movement_ratio(self):
        mix = InstructionMix.from_ratios(
            100, load=0.3, store=0.2, integer=0.5
        )
        assert math.isclose(mix.data_movement_ratio, 0.5)

    def test_as_vector_order(self):
        mix = InstructionMix.from_ratios(
            10, load=0.1, store=0.2, branch=0.3, integer=0.2, fp=0.1, other=0.1
        )
        vector = list(mix.as_vector())
        assert len(vector) == len(INSTRUCTION_CLASSES)
        assert math.isclose(vector[2], 0.3)  # branch is third

    @given(st.floats(min_value=1e-6, max_value=1e6),
           st.floats(min_value=0.01, max_value=100.0))
    def test_scaling_preserves_ratios(self, count, factor):
        mix = InstructionMix.from_counts(load=count, branch=count / 2 + 1)
        scaled = mix.scaled(factor)
        assert math.isclose(
            scaled.ratio(InstructionClass.LOAD),
            mix.ratio(InstructionClass.LOAD),
            rel_tol=1e-9,
        )

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e5), min_size=6, max_size=6
        ).filter(lambda values: sum(values) > 0)
    )
    def test_ratios_sum_to_one(self, values):
        mix = InstructionMix()
        for cls, value in zip(INSTRUCTION_CLASSES, values):
            mix.add(cls, value)
        assert math.isclose(sum(mix.ratios().values()), 1.0, abs_tol=1e-9)


class TestIntBreakdown:
    def test_valid_breakdown(self):
        breakdown = IntBreakdown(0.6, 0.2, 0.2)
        assert math.isclose(breakdown.address_calculation, 0.8)

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            IntBreakdown(0.6, 0.2, 0.1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            IntBreakdown(1.2, -0.1, -0.1)

    def test_combine_weighted(self):
        a = IntBreakdown(0.8, 0.1, 0.1)
        b = IntBreakdown(0.4, 0.3, 0.3)
        combined = combine_breakdowns([(a, 3.0), (b, 1.0)])
        assert math.isclose(combined.int_addr, 0.7)

    def test_combine_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            combine_breakdowns([(IntBreakdown(0.5, 0.3, 0.2), 0.0)])


class TestDataMovement:
    def test_headline_statistic(self):
        # Paper-shaped mix: ~73% data movement, ~92% with branches.
        mix = InstructionMix.from_ratios(
            1000, load=0.26, store=0.11, branch=0.19, integer=0.38,
            fp=0.02, other=0.04,
        )
        breakdown = IntBreakdown(0.64, 0.18, 0.18)
        movement = data_movement_share(mix, breakdown)
        assert 0.65 < movement < 0.75
        with_branches = data_movement_with_branches(mix, breakdown)
        assert 0.85 < with_branches < 0.95

    def test_validate_mix_mapping_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate_mix_mapping({"bogus": 1.0})

    def test_validate_mix_mapping_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_mix_mapping({"load": -1.0})
