"""Tests for synthetic trace generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.profile import (
    LINE_BYTES,
    PAGE_BYTES,
    CodeFootprint,
    CodeRegion,
    DataFootprint,
)
from repro.uarch.trace import (
    code_line_ranges,
    data_line_ranges,
    generate_data_trace,
    generate_fetch_trace,
    split_for_tlb,
)


def simple_footprint():
    return CodeFootprint(
        [
            CodeRegion("hot", 16 * 1024, weight=0.8, sequentiality=6),
            CodeRegion("cold", 256 * 1024, weight=0.2, sequentiality=4),
        ]
    )


def simple_data():
    return DataFootprint(
        stream_bytes=1024 * 1024,
        state_bytes=512 * 1024,
        state_fraction=0.1,
        hot_bytes=16 * 1024,
        hot_fraction=0.8,
    )


class TestFetchTrace:
    def test_length(self):
        trace = generate_fetch_trace(simple_footprint(), 5000, seed=1)
        assert len(trace) == 5000

    def test_determinism(self):
        a = generate_fetch_trace(simple_footprint(), 2000, seed=7)
        b = generate_fetch_trace(simple_footprint(), 2000, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_trace(self):
        a = generate_fetch_trace(simple_footprint(), 2000, seed=7)
        b = generate_fetch_trace(simple_footprint(), 2000, seed=8)
        assert not np.array_equal(a, b)

    def test_addresses_within_regions(self):
        footprint = simple_footprint()
        trace = generate_fetch_trace(footprint, 20_000, seed=3)
        ranges = code_line_ranges(footprint)
        in_any = np.zeros(len(trace), dtype=bool)
        for base, n_lines in ranges:
            in_any |= (trace >= base) & (trace < base + n_lines)
        assert in_any.all()

    def test_hot_region_dominates(self):
        footprint = simple_footprint()
        trace = generate_fetch_trace(footprint, 30_000, seed=5)
        base, n_lines = code_line_ranges(footprint)[0]
        hot_share = ((trace >= base) & (trace < base + n_lines)).mean()
        assert hot_share > 0.6

    def test_rejects_nonpositive_refs(self):
        with pytest.raises(ValueError):
            generate_fetch_trace(simple_footprint(), 0)


class TestDataTrace:
    def test_length_and_determinism(self):
        a = generate_data_trace(simple_data(), 4000, seed=2)
        b = generate_data_trace(simple_data(), 4000, seed=2)
        assert len(a) == 4000
        assert np.array_equal(a, b)

    def test_regions_respected(self):
        data = simple_data()
        trace = generate_data_trace(data, 20_000, seed=4)
        ranges = data_line_ranges(data)
        in_any = np.zeros(len(trace), dtype=bool)
        for base, n_lines in ranges.values():
            in_any |= (trace >= base) & (trace < base + n_lines)
        assert in_any.all()

    def test_hot_fraction_share(self):
        data = simple_data()
        trace = generate_data_trace(data, 30_000, seed=6)
        base, n_lines = data_line_ranges(data)["hot"]
        hot_share = ((trace >= base) & (trace < base + n_lines)).mean()
        assert 0.7 < hot_share < 0.9

    def test_stream_progresses_sequentially(self):
        data = DataFootprint(
            stream_bytes=4 * 1024 * 1024,
            state_bytes=64 * 1024,
            state_fraction=0.0,
            hot_bytes=1024,
            hot_fraction=0.0,
            stream_reuse=1.0,
        )
        trace = generate_data_trace(data, 5000, seed=8)
        base, _ = data_line_ranges(data)["stream"]
        relative = trace - base
        # Sequential walk: the stream position is non-decreasing on
        # average (allowing the short back-jitter re-references).
        drift = np.diff(relative)
        assert drift.mean() > 0

    def test_state_page_locality(self):
        """Hot state lines cluster into hot pages (TLB-friendly)."""
        data = DataFootprint(
            stream_bytes=64 * 1024,
            state_bytes=8 * 1024 * 1024,
            state_fraction=1.0,
            hot_bytes=1024,
            hot_fraction=0.0,
            state_zipf=0.9,
        )
        trace = generate_data_trace(data, 20_000, seed=9)
        pages = trace // (PAGE_BYTES // LINE_BYTES)
        unique_pages, counts = np.unique(pages, return_counts=True)
        top_share = np.sort(counts)[::-1][:20].sum() / counts.sum()
        assert top_share > 0.4  # hot pages absorb a large share

    def test_empty_footprint_rejected(self):
        with pytest.raises(ValueError):
            DataFootprint(
                stream_bytes=0, state_bytes=0, state_fraction=0.0,
                hot_bytes=0, hot_fraction=0.0,
            )


class TestTlbSplit:
    def test_page_conversion(self):
        lines = np.array([0, 63, 64, 127, 128])
        pages = split_for_tlb(lines)
        assert list(pages) == [0, 0, 1, 1, 2]


@given(st.integers(min_value=100, max_value=5000))
@settings(max_examples=10, deadline=None)
def test_any_length_supported(n):
    trace = generate_fetch_trace(simple_footprint(), n, seed=11)
    assert len(trace) == n
