"""Deeper SQL-engine semantics: multi-operator plans and engine traits."""

import pytest

from repro.stacks.sql import HiveEngine, ImpalaEngine, Query, SharkEngine


def star_tables():
    fact = [
        {"id": i, "dim_id": i % 3, "v": float(i)} for i in range(30)
    ]
    dim = [{"dim_id": d, "label": f"d{d}"} for d in range(3)]
    return {"fact": fact, "dim": dim}


class TestPlanComposition:
    def test_join_then_group_then_order(self):
        query = (
            Query("fact")
            .join("dim", "dim_id", "dim_id")
            .group_by(("label",), {"total": ("sum", "v")})
            .order_by("total", descending=True)
        )
        result = ImpalaEngine().execute("q", query, star_tables())
        totals = [row["total"] for row in result.output]
        assert totals == sorted(totals, reverse=True)
        assert len(result.output) == 3

    def test_filter_before_join_reduces_rows(self):
        unfiltered = (
            Query("fact").join("dim", "dim_id", "dim_id")
        )
        filtered = (
            Query("fact")
            .filter(lambda row: row["v"] > 20)
            .join("dim", "dim_id", "dim_id")
        )
        a = HiveEngine().execute("a", unfiltered, star_tables())
        b = HiveEngine().execute("b", filtered, star_tables())
        assert len(b.output) < len(a.output)

    def test_limit_after_order(self):
        query = Query("fact").order_by("v", descending=True).limit(5)
        result = SharkEngine().execute("q", query, star_tables())
        assert [row["v"] for row in result.output] == [29.0, 28.0, 27.0, 26.0, 25.0]

    def test_chained_filters(self):
        query = (
            Query("fact")
            .filter(lambda row: row["v"] > 5)
            .filter(lambda row: row["v"] < 10)
        )
        result = ImpalaEngine().execute("q", query, star_tables())
        assert sorted(row["v"] for row in result.output) == [6.0, 7.0, 8.0, 9.0]

    def test_empty_result_is_fine(self):
        query = Query("fact").filter(lambda row: False)
        result = HiveEngine().execute("q", query, star_tables())
        assert result.output == []
        assert result.profile.instructions > 0


class TestEngineTraitDifferences:
    def test_impala_profile_is_thinner(self):
        query = Query("fact").order_by("v")
        hive = HiveEngine().execute("q", query, star_tables())
        impala = ImpalaEngine().execute("q", query, star_tables())
        # Same rows, different stacks.
        assert hive.output == impala.output
        assert hive.profile.instructions > impala.profile.instructions
        assert (
            hive.profile.code.total_bytes > impala.profile.code.total_bytes
        )

    def test_wide_ops_record_intermediates(self):
        query = Query("fact").group_by(("dim_id",), {"n": ("count", "id")})
        result = SharkEngine().execute("q", query, star_tables())
        assert result.meter.bytes_shuffled > 0

    def test_narrow_only_plan_has_no_intermediate(self):
        query = Query("fact").filter(lambda row: row["v"] > 3).project(("id",))
        result = ImpalaEngine().execute("q", query, star_tables())
        assert result.meter.bytes_shuffled == 0
