"""Tests for the additional BigDataBench operations (registry fillers)."""

import pytest

from repro.workloads.extra import (
    hadoop_bfs,
    hadoop_index,
    hadoop_pagerank,
    hbase_scan,
    hbase_write,
    hive_aggregation,
    hive_join,
    impala_aggregation,
    mpi_bfs,
    spark_bfs,
    spark_connected_components,
    spark_index,
)
from repro.workloads.kernels import wiki_documents

SCALE = 0.25


class TestGraphOperations:
    def test_bfs_variants_agree_on_reachability(self):
        spark = spark_bfs(scale=SCALE)
        hadoop = hadoop_bfs(scale=SCALE)
        assert spark.output["reached"] == hadoop.output["reached"]
        assert spark.output["reached"] > 1

    def test_mpi_bfs_visits_nodes(self):
        result = mpi_bfs(scale=SCALE)
        assert sum(result.output) > 0

    def test_connected_components_positive(self):
        result = spark_connected_components(scale=SCALE)
        assert result.output["components"] >= 1

    def test_hadoop_pagerank_ordered(self):
        result = hadoop_pagerank(scale=SCALE)
        scores = [score for _node, score in result.output]
        assert scores == sorted(scores, reverse=True)
        assert all(score > 0 for score in scores)


class TestIndexOperations:
    def test_inverted_index_postings_point_at_word(self):
        result = hadoop_index(scale=SCALE)
        docs = wiki_documents(SCALE, seed=0)
        # Sample a few index entries and verify the posting positions.
        checked = 0
        for word, postings in result.output[:50]:
            for doc_id, position in postings[:2]:
                tokens = docs[doc_id].split()
                assert tokens[position] == word
                checked += 1
        assert checked > 10

    def test_spark_index_groups_by_word(self):
        result = spark_index(scale=SCALE)
        words = [word for word, _postings in result.output]
        assert len(words) == len(set(words))


class TestHBaseOperations:
    def test_write_creates_sstables(self):
        result = hbase_write(scale=SCALE)
        assert result.output >= 1  # flushed at least one SSTable
        assert result.meter.records_in > 0

    def test_scan_returns_rows(self):
        result = hbase_scan(scale=SCALE)
        assert result.output > 100
        assert result.meter.bytes_out > result.meter.bytes_in


class TestQueryPrimitives:
    def test_aggregation_totals_positive(self):
        result = hive_aggregation(scale=SCALE)
        assert all(row["revenue"] > 0 for row in result.output)
        assert all(row["n"] >= 1 for row in result.output)

    def test_aggregation_engines_agree(self):
        hive = hive_aggregation(scale=SCALE)
        impala = impala_aggregation(scale=SCALE)
        hive_by_goods = {row["goods_id"]: row["revenue"] for row in hive.output}
        impala_by_goods = {
            row["goods_id"]: row["revenue"] for row in impala.output
        }
        assert hive_by_goods == impala_by_goods

    def test_join_filters_by_total(self):
        result = hive_join(scale=SCALE)
        assert all("buyer_id" in row for row in result.output)


class TestStackFingerprints:
    """Every stack leaves its footprint signature on the profile."""

    @pytest.mark.parametrize(
        "runner,min_kb,max_kb",
        [
            (mpi_bfs, 64, 512),
            (spark_bfs, 512, 2048),
            (hadoop_bfs, 512, 2048),
        ],
    )
    def test_code_footprints(self, runner, min_kb, max_kb):
        result = runner(scale=SCALE)
        footprint_kb = result.profile.code.total_bytes / 1024
        assert min_kb <= footprint_kb <= max_kb
