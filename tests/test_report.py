"""Tests for the report rendering helpers."""

import pytest

from repro.report import render_grouped_bars, render_series, render_table


class TestRenderTable:
    def test_basic(self):
        text = render_table(["a", "b"], [[1, 2.5], [3, 4.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text
        assert "4.250" in text

    def test_column_alignment(self):
        text = render_table(["name", "v"], [["x", 1.0], ["longer", 2.0]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2])  # header width == ruler width

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_format(self):
        text = render_table(["v"], [[3.14159]], float_format="{:.1f}")
        assert "3.1" in text
        assert "3.14" not in text

    def test_non_float_cells_stringified(self):
        text = render_table(["v"], [["hello"], [42]])
        assert "hello" in text and "42" in text


class TestRenderSeries:
    def test_series_table(self):
        text = render_series(
            "KB", [16, 32], {"hadoop": [0.3, 0.2], "parsec": [0.1, 0.05]},
            title="fig",
        )
        assert "hadoop" in text and "parsec" in text
        assert "16" in text and "32" in text

    def test_values_paired_with_x(self):
        text = render_series("x", [1], {"s": [0.5]})
        assert "0.5000" in text


class TestRenderGroupedBars:
    def test_bars_scale_to_peak(self):
        text = render_grouped_bars(
            {"g": {"big": 1.0, "small": 0.25}}, width=8
        )
        lines = [l for l in text.splitlines() if "#" in l]
        big_bar = next(l for l in lines if "big" in l)
        small_bar = next(l for l in lines if "small" in l)
        assert big_bar.count("#") == 8
        assert small_bar.count("#") == 2

    def test_empty_groups(self):
        assert render_grouped_bars({}) == ""

    def test_title(self):
        text = render_grouped_bars({"g": {"k": 1.0}}, title="chart")
        assert text.splitlines()[0] == "chart"
