"""Deliberately misbehaving cell callables for executor failure tests.

Workers resolve these by dotted path (``tests.test_exec_cells.<name>``), so
each function must be importable in a fresh process.  Cross-process
state (attempt counts) lives in files under ``spec["extra"]["dir"]`` —
a cell is never executed twice concurrently (the supervisor kills a
worker before requeueing its cell), so plain files are race-free.

The ``test_*`` functions at the bottom exercise the benign cells
in-process; the signal-sending cells (SIGKILL/SIGSTOP) are only ever
run inside sacrificial workers by ``test_exec_supervisor.py``.
"""

import os
import signal
import time


def _extra(spec):
    return spec.get("extra", {})


def _attempt_count(spec):
    """Count this cell's executions across all processes (1-based)."""
    state_dir = _extra(spec)["dir"]
    name = spec["cell_id"].replace("/", "_").replace("@", "_")
    path = os.path.join(state_dir, f"{name}.attempts")
    count = 1
    if os.path.exists(path):
        with open(path) as handle:
            count = int(handle.read() or 0) + 1
    with open(path, "w") as handle:
        handle.write(str(count))
    return count


def ok_cell(spec):
    """Deterministic metrics from the spec alone (counts attempts too)."""
    if "dir" in _extra(spec):
        _attempt_count(spec)
    return {
        "metrics": {
            "value": float(spec["seed"]) * 10.0 + len(spec["workload"]),
            "scale": float(spec["scale"]),
        }
    }


def crash_cell(spec):
    """Fails identically every time: the poison-cell shape."""
    _attempt_count(spec)
    raise RuntimeError(f"deterministic boom in {spec['workload']}")


def flaky_cell(spec):
    """Fails the first ``fail_times`` attempts, then succeeds."""
    attempt = _attempt_count(spec)
    fail_times = int(_extra(spec).get("fail_times", 1))
    if attempt <= fail_times:
        raise RuntimeError(f"transient failure, attempt {attempt}")
    return {"metrics": {"value": 42.0}}


def sigkill_once_cell(spec):
    """SIGKILLs its own worker on the first attempt: a mid-cell crash."""
    attempt = _attempt_count(spec)
    if attempt <= int(_extra(spec).get("kill_times", 1)):
        os.kill(os.getpid(), signal.SIGKILL)
    return {"metrics": {"value": 7.0}}


def hang_once_cell(spec):
    """Sleeps past any cell timeout on the first attempt.

    Heartbeats keep flowing while it sleeps, so this exercises the
    wall-clock deadline specifically, not stall detection.
    """
    attempt = _attempt_count(spec)
    if attempt <= 1:
        time.sleep(600)
    return {"metrics": {"value": 5.0}}


def freeze_once_cell(spec):
    """SIGSTOPs its own worker on the first attempt.

    A stopped process sends no heartbeats: this exercises stall
    detection (the supervisor's SIGKILL also fells stopped processes).
    """
    attempt = _attempt_count(spec)
    if attempt <= 1:
        os.kill(os.getpid(), signal.SIGSTOP)
    return {"metrics": {"value": 9.0}}


def kill_worker_cell(spec):
    """SIGKILLs every process except the supervisor itself.

    Drives worker restarts until the executor degrades to serial
    execution, where (running in the supervisor's process) it succeeds.
    """
    main_pid = int(_extra(spec)["main_pid"])
    if os.getpid() != main_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return {"metrics": {"value": 3.0}}


def slow_cell(spec):
    """Takes a bounded but non-trivial time; used for kill/resume."""
    time.sleep(float(_extra(spec).get("seconds", 0.5)))
    return ok_cell(spec)


# --------------------------------------------------------------------------
# In-process tests for the benign cells (the supervisor suite only ever
# observes these through worker processes; here we pin their contracts).
# --------------------------------------------------------------------------

def _spec(tmp_path=None, **extra):
    spec = {
        "cell_id": "S-WordCount@s0.2/seed3",
        "workload": "S-WordCount",
        "scale": 0.2,
        "seed": 3,
    }
    if tmp_path is not None:
        extra["dir"] = str(tmp_path)
    if extra:
        spec["extra"] = extra
    return spec


def test_ok_cell_metrics_are_deterministic():
    first = ok_cell(_spec())
    second = ok_cell(_spec())
    assert first == second
    assert first["metrics"]["value"] == 3 * 10.0 + len("S-WordCount")
    assert first["metrics"]["scale"] == 0.2


def test_attempt_count_increments_across_calls(tmp_path):
    spec = _spec(tmp_path)
    assert _attempt_count(spec) == 1
    assert _attempt_count(spec) == 2
    assert _attempt_count(spec) == 3


def test_attempt_count_is_per_cell(tmp_path):
    a = _spec(tmp_path)
    b = dict(_spec(tmp_path), cell_id="H-Grep@s0.2/seed0")
    assert _attempt_count(a) == 1
    assert _attempt_count(b) == 1
    assert _attempt_count(a) == 2


def test_crash_cell_always_raises(tmp_path):
    import pytest

    spec = _spec(tmp_path)
    for _ in range(3):
        with pytest.raises(RuntimeError, match="deterministic boom"):
            crash_cell(spec)


def test_flaky_cell_fails_then_succeeds(tmp_path):
    import pytest

    spec = _spec(tmp_path, fail_times=2)
    for attempt in (1, 2):
        with pytest.raises(RuntimeError, match=f"attempt {attempt}"):
            flaky_cell(spec)
    assert flaky_cell(spec) == {"metrics": {"value": 42.0}}


def test_slow_cell_returns_ok_metrics(tmp_path):
    spec = _spec(tmp_path, seconds=0.01)
    assert slow_cell(spec)["metrics"]["value"] == ok_cell(_spec())["metrics"]["value"]
