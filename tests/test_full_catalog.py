"""Whole-catalog integration: every registry entry executes and profiles.

This is the slowest test module (it runs all 77 catalog workloads plus
the six MPI versions at a small scale) and is the safety net for the
Table 2 reduction experiment: a workload that crashes or produces a
degenerate profile would poison the clustering.
"""

import math

import pytest

from repro.uarch.isa import InstructionClass
from repro.workloads import ALL_WORKLOADS, MPI_WORKLOADS

SCALE = 0.2


@pytest.fixture(scope="module")
def all_results():
    results = {}
    for definition in ALL_WORKLOADS + MPI_WORKLOADS:
        results[definition.workload_id] = definition.runner(scale=SCALE)
    return results


class TestEveryWorkloadRuns:
    def test_all_83_execute(self, all_results):
        assert len(all_results) == 83

    def test_profiles_are_sane(self, all_results):
        for workload_id, result in all_results.items():
            profile = result.profile
            assert profile.instructions > 0, workload_id
            assert profile.mix.total > 0, workload_id
            ratios = profile.mix.ratios()
            assert math.isclose(sum(ratios.values()), 1.0, abs_tol=1e-6), workload_id
            assert profile.code.total_bytes > 0, workload_id
            assert profile.ilp > 0, workload_id

    def test_names_propagate(self, all_results):
        for workload_id, result in all_results.items():
            assert result.name == workload_id
            assert result.profile.name == workload_id

    def test_meters_account_input(self, all_results):
        for workload_id, result in all_results.items():
            assert result.meter.bytes_in > 0, workload_id
            assert result.meter.records_in > 0, workload_id

    def test_jvm_stacks_have_bigger_footprints(self, all_results):
        mpi_footprints = [
            all_results[d.workload_id].profile.code.total_bytes
            for d in MPI_WORKLOADS
        ]
        jvm_footprints = [
            all_results[d.workload_id].profile.code.total_bytes
            for d in ALL_WORKLOADS
            if d.stack in ("Hadoop", "Spark", "Hive", "Shark", "HBase")
        ]
        assert max(mpi_footprints) < min(jvm_footprints) * 1.01

    def test_branch_ratios_in_band(self, all_results):
        """Figure 1's premise: every big data workload is branch-heavy."""
        for definition in ALL_WORKLOADS:
            result = all_results[definition.workload_id]
            branch = result.profile.mix.ratio(InstructionClass.BRANCH)
            # K-means' FP-dense inner loops sit at the low edge.
            assert 0.08 < branch < 0.30, definition.workload_id

    def test_variants_differ_from_bases(self, all_results):
        """Configuration variants are not byte-identical to their base
        (different seeds/scales really change the metered execution)."""
        pairs = [
            ("S-WordCount", "S-WordCount-v2"),
            ("H-Read", "H-Read-large"),
            ("I-SelectQuery", "I-SelectQuery-wide"),
        ]
        for base_id, variant_id in pairs:
            base = all_results[base_id]
            variant = all_results[variant_id]
            assert (
                base.profile.instructions != variant.profile.instructions
            ), (base_id, variant_id)
