"""Additional generator properties: determinism, scaling, distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen import (
    EcommerceTransactions,
    GoogleWebGraph,
    TpcDsWebTables,
    WikipediaCorpus,
)
from repro.datagen.graph import GraphConfig, GraphGenerator


class TestScaling:
    def test_graph_scale_monotonic(self):
        small = GoogleWebGraph(scale=0.001, seed=1)
        large = GoogleWebGraph(scale=0.003, seed=1)
        assert large.config.n_nodes > small.config.n_nodes
        assert len(large.edges()) > len(small.edges())

    def test_tpcds_scale_monotonic(self):
        small = TpcDsWebTables(scale=0.05, seed=2).generate()
        large = TpcDsWebTables(scale=0.2, seed=2).generate()
        assert len(large.web_sales) > len(small.web_sales)
        # Dimensions grow sub-linearly, as in DSGen.
        sales_ratio = len(large.web_sales) / len(small.web_sales)
        item_ratio = len(large.item) / len(small.item)
        assert item_ratio < sales_ratio

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_text_determinism_any_seed(self, seed):
        a = list(WikipediaCorpus(seed=seed).documents(2))
        b = list(WikipediaCorpus(seed=seed).documents(2))
        assert a == b


class TestDistributionShapes:
    def test_order_totals_positive_and_skewed(self):
        orders = list(EcommerceTransactions(seed=3).orders(500))
        totals = np.array([row.fields[2] for row in orders])
        assert (totals > 0).all()
        # Gamma-shaped: mean above median.
        assert totals.mean() > np.median(totals)

    def test_graph_attachment_bias_controls_skew(self):
        flat = GraphGenerator(
            GraphConfig(n_nodes=600, mean_out_degree=4, attachment_bias=0.0),
            seed=4,
        )
        skewed = GraphGenerator(
            GraphConfig(n_nodes=600, mean_out_degree=4, attachment_bias=0.95),
            seed=4,
        )

        def max_in_degree(generator):
            counts = {}
            for _s, t in generator.edges():
                counts[t] = counts.get(t, 0) + 1
            return max(counts.values())

        assert max_in_degree(skewed) > 2 * max_in_degree(flat)

    def test_tpcds_sales_prices_consistent(self):
        tables = TpcDsWebTables(scale=0.05, seed=5).generate()
        for sale in tables.web_sales[:100]:
            assert sale["ws_ext_sales_price"] == pytest.approx(
                sale["ws_sales_price"] * sale["ws_quantity"], abs=0.02
            )
            assert sale["ws_net_paid"] <= sale["ws_ext_sales_price"] + 1e-9


class TestRecordSizes:
    """Table 2 quotes per-dataset record sizes; the generators should be
    in the right regime for the workloads' byte accounting."""

    def test_wiki_documents_are_kilobytes(self):
        docs = list(WikipediaCorpus(seed=6).documents(10))
        sizes = [len(d) for d in docs]
        assert 1000 < np.mean(sizes) < 10_000

    def test_ecommerce_rows_are_tens_of_bytes(self):
        rows = list(EcommerceTransactions(seed=7).orders(20))
        sizes = [row.size_bytes() for row in rows]
        assert 20 < np.mean(sizes) < 120  # paper: ~52 B
