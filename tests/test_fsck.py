"""``repro fsck``: scan findings, repairs, and CLI exit codes.

Each test builds a *real* runs directory through the production
writers (SweepCheckpoint, RunRegistry), applies one characteristic
piece of crash damage by hand, and checks that the scan names it, the
repair removes it, and a subsequent checkpoint load trusts the result.
"""

import json
import os

import pytest

from repro.cli import main
from repro.exec.cells import SweepCell, run_cell
from repro.exec.checkpoint import SweepCheckpoint
from repro.exec.cells import CellResult
from repro.obs.fsck import fsck_repair, fsck_scan

PROBE_FN = "repro.analysis.crashsim.probe_cell"
SCALE = 0.25


def make_runs_dir(tmp_path, sweep="probe-h-s0", n_cells=3,
                  snapshot_every=2):
    """A legitimate runs dir: manifest + journal + snapshot, real cells."""
    runs = str(tmp_path / "runs")
    checkpoint = SweepCheckpoint(runs, sweep, snapshot_every=snapshot_every)
    checkpoint.initialise(
        config_hash="h", seed=0,
        config={"scale": SCALE}, n_cells=n_cells,
    )
    for i in range(n_cells):
        cell = SweepCell(workload=f"w{i}", platform="e5645", scale=SCALE,
                         seed=0, fn=PROBE_FN)
        payload = run_cell(cell.to_dict())
        checkpoint.record(CellResult(
            cell_id=cell.cell_id, status="ok",
            metrics=payload["metrics"],
            provenance_hash=payload["provenance_hash"],
        ))
    checkpoint.close()
    return runs, checkpoint


def kinds(result):
    return sorted(f.kind for f in result.findings)


def repair_and_rescan(runs):
    result = fsck_scan(runs)
    fsck_repair(result)
    return fsck_scan(runs)


class TestScan:
    def test_clean_dir_is_clean(self, tmp_path):
        runs, _ = make_runs_dir(tmp_path)
        result = fsck_scan(runs)
        assert result.clean
        assert result.findings == []

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            fsck_scan(str(tmp_path / "nope"))

    def test_leaked_tmp_and_corrupt_record(self, tmp_path):
        runs, _ = make_runs_dir(tmp_path)
        open(os.path.join(runs, "r.json.tmp.42"), "w").write("{")
        open(os.path.join(runs, "bad.json"), "w").write("{ nope")
        result = fsck_scan(runs)
        assert kinds(result) == ["corrupt-record", "leaked-tmp"]
        assert not result.clean

    def test_torn_journal_tail(self, tmp_path):
        runs, checkpoint = make_runs_dir(tmp_path)
        with open(checkpoint.journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"cell_id": "w9@e5645+s0", "sta')
        result = fsck_scan(runs)
        assert "torn-journal" in kinds(result)

    def test_mid_journal_corruption_is_not_torn(self, tmp_path):
        runs, checkpoint = make_runs_dir(tmp_path)
        lines = open(checkpoint.journal_path).read().splitlines()
        lines[0] = lines[0][:10]  # corrupt a *middle* entry
        open(checkpoint.journal_path, "w").write("\n".join(lines) + "\n")
        result = fsck_scan(runs)
        assert "corrupt-journal-entry" in kinds(result)
        assert "torn-journal" not in kinds(result)

    def test_cell_hash_mismatch(self, tmp_path):
        runs, checkpoint = make_runs_dir(tmp_path)
        lines = open(checkpoint.journal_path).read().splitlines()
        entry = json.loads(lines[0])
        entry["metrics"]["value"] = entry["metrics"]["value"] + 99.0
        lines[0] = json.dumps(entry, sort_keys=True,
                              separators=(",", ":"))
        open(checkpoint.journal_path, "w").write("\n".join(lines) + "\n")
        result = fsck_scan(runs)
        assert "cell-hash-mismatch" in kinds(result)

    def test_snapshot_divergence_and_snapshot_only(self, tmp_path):
        runs, checkpoint = make_runs_dir(tmp_path)
        snapshot = json.load(open(checkpoint.snapshot_path))
        cell_ids = sorted(snapshot["cells"])
        # Diverge one snapshot cell from its journaled version.
        snapshot["cells"][cell_ids[0]]["attempts"] = 42
        json.dump(snapshot, open(checkpoint.snapshot_path, "w"))
        result = fsck_scan(runs)
        assert "snapshot-divergence" in kinds(result)

    def test_snapshot_only_cells_are_a_note(self, tmp_path):
        runs, checkpoint = make_runs_dir(tmp_path)
        os.remove(checkpoint.journal_path)
        result = fsck_scan(runs)
        assert "snapshot-only-cells" in kinds(result)
        assert result.clean  # merge re-validates; not an error

    def test_stale_vs_live_lock(self, tmp_path):
        runs, checkpoint = make_runs_dir(tmp_path)
        lock = os.path.join(checkpoint.dir, "sweep.lock")
        # pid 1 is alive in any environment: a live (foreign) lock.
        json.dump({"pid": 1}, open(lock, "w"))
        result = fsck_scan(runs)
        assert "live-lock" in kinds(result)
        assert result.clean  # live lock is a note
        # A pid that cannot exist: stale, an error.
        json.dump({"pid": 2 ** 22 + 12345}, open(lock, "w"))
        result = fsck_scan(runs)
        assert "stale-lock" in kinds(result)
        assert not result.clean
        # Our own pid: a dead in-process owner (simulated crash), stale.
        json.dump({"pid": os.getpid()}, open(lock, "w"))
        assert "stale-lock" in kinds(fsck_scan(runs))

    def test_orphaned_sweep_dir(self, tmp_path):
        runs, _ = make_runs_dir(tmp_path)
        orphan = os.path.join(runs, "sweeps", "empty-h-s9")
        os.makedirs(orphan)
        open(os.path.join(orphan, "random.txt"), "w").write("x")
        result = fsck_scan(runs)
        assert "orphaned-sweep" in kinds(result)

    def test_torn_progress_and_span_are_notes(self, tmp_path):
        runs, checkpoint = make_runs_dir(tmp_path)
        progress = os.path.join(checkpoint.dir, "progress.jsonl")
        open(progress, "w").write('{"event": "sweep-started"}\n{"ev')
        trace_dir = os.path.join(checkpoint.dir, "trace")
        os.makedirs(trace_dir)
        span = os.path.join(trace_dir, "supervisor-1.spans.jsonl")
        open(span, "w").write('{"kind": "span"}\n{"ki')
        result = fsck_scan(runs)
        assert "torn-progress" in kinds(result)
        assert "torn-span" in kinds(result)
        assert result.clean  # best-effort tier damage never fails fsck


class TestRepair:
    def test_torn_snapshot_and_torn_journal_same_dir(self, tmp_path):
        # The double-fault acceptance case: both recovery sources
        # damaged in one sweep dir, fsck repairs both, load() trusts it.
        runs, checkpoint = make_runs_dir(tmp_path)
        with open(checkpoint.journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"cell_id": "w9@e5645+s0", "sta')  # torn append
        snapshot_body = open(checkpoint.snapshot_path).read()
        open(checkpoint.snapshot_path, "w").write(
            snapshot_body[: len(snapshot_body) // 2]  # torn rewrite
        )
        result = fsck_scan(runs)
        assert "torn-journal" in kinds(result)
        assert "corrupt-snapshot" in kinds(result)
        after = repair_and_rescan(runs)
        assert after.clean
        loaded = SweepCheckpoint(runs, checkpoint.sweep).load()
        assert sorted(loaded) == [
            "w0@e5645+s0", "w1@e5645+s0", "w2@e5645+s0"
        ]

    def test_repair_each_error_kind_to_clean(self, tmp_path):
        runs, checkpoint = make_runs_dir(tmp_path)
        # Pile up one of everything.
        open(os.path.join(runs, "r.json.tmp.42"), "w").write("{")
        open(os.path.join(runs, "bad.json"), "w").write("{ nope")
        with open(checkpoint.journal_path, "a", encoding="utf-8") as fh:
            fh.write("{torn")
        lock = os.path.join(checkpoint.dir, "sweep.lock")
        json.dump({"pid": 2 ** 22 + 999}, open(lock, "w"))
        orphan = os.path.join(runs, "sweeps", "empty-h-s9")
        os.makedirs(orphan)
        open(os.path.join(orphan, "junk"), "w").write("x")

        first = fsck_scan(runs)
        assert not first.clean
        fsck_repair(first)
        assert all(f.repaired for f in first.errors)
        after = fsck_scan(runs)
        assert after.clean
        # Evidence is kept, not destroyed.
        assert [f.kind for f in after.notes].count(
            "quarantined-artifact") >= 2

    def test_hash_mismatch_repair_drops_only_bad_cells(self, tmp_path):
        runs, checkpoint = make_runs_dir(tmp_path, snapshot_every=99)
        # No snapshot: the journal is the only copy of every cell.
        os.remove(checkpoint.snapshot_path)
        lines = open(checkpoint.journal_path).read().splitlines()
        entry = json.loads(lines[1])
        entry["metrics"]["value"] = -1.0
        lines[1] = json.dumps(entry, sort_keys=True,
                              separators=(",", ":"))
        open(checkpoint.journal_path, "w").write("\n".join(lines) + "\n")
        after = repair_and_rescan(runs)
        assert after.clean
        loaded = SweepCheckpoint(runs, checkpoint.sweep).load()
        # The tampered cell is gone (it will rerun); the others survive.
        assert sorted(loaded) == ["w0@e5645+s0", "w2@e5645+s0"]

    def test_snapshot_divergence_rebuilt_from_journal(self, tmp_path):
        runs, checkpoint = make_runs_dir(tmp_path)
        snapshot = json.load(open(checkpoint.snapshot_path))
        cell_id = sorted(snapshot["cells"])[0]
        snapshot["cells"][cell_id]["attempts"] = 42
        json.dump(snapshot, open(checkpoint.snapshot_path, "w"))
        after = repair_and_rescan(runs)
        assert after.clean
        rebuilt = json.load(open(checkpoint.snapshot_path))
        assert rebuilt["cells"][cell_id]["attempts"] != 42

    def test_repair_is_idempotent(self, tmp_path):
        runs, checkpoint = make_runs_dir(tmp_path)
        with open(checkpoint.journal_path, "a", encoding="utf-8") as fh:
            fh.write("{torn")
        assert repair_and_rescan(runs).clean
        assert repair_and_rescan(runs).clean  # second pass: no-op


class TestFsckCli:
    def test_exit_codes_match_diff_conventions(self, tmp_path, monkeypatch,
                                               capsys):
        runs = str(tmp_path / "r")
        monkeypatch.setenv("REPRO_RUNS_DIR", runs)
        assert main(["fsck"]) == 3  # missing dir
        make_runs_dir(tmp_path, sweep="s-h-s0")
        runs_real = str(tmp_path / "runs")
        assert main(["--runs-dir", runs_real, "fsck"]) == 0
        open(os.path.join(runs_real, "bad.json"), "w").write("{")
        assert main(["--runs-dir", runs_real, "fsck"]) == 1
        assert main(["--runs-dir", runs_real, "fsck", "--repair"]) == 0
        assert main(["--runs-dir", runs_real, "fsck"]) == 0
        capsys.readouterr()

    def test_json_payload_shape(self, tmp_path, capsys):
        runs, _ = make_runs_dir(tmp_path)
        open(os.path.join(runs, "bad.json"), "w").write("{")
        assert main(["--runs-dir", runs, "fsck", "--json",
                     "--repair"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False  # the pre-repair scan
        assert payload["post_repair"]["clean"] is True
        assert payload["findings"][0]["kind"] == "corrupt-record"
        assert payload["findings"][0]["repaired"] is True
