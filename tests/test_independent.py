"""Tests for the microarchitecture-independent characterization."""

import numpy as np
import pytest

from repro.core import (
    INDEPENDENT_METRIC_NAMES,
    adjusted_rand_index,
    independent_matrix,
    independent_vector,
    reduce_workloads_independent,
)
from repro.workloads.kernels import (
    hadoop_wordcount,
    mpi_wordcount,
    spark_wordcount,
)


@pytest.fixture(scope="module")
def wordcount_profiles():
    return {
        "mpi": mpi_wordcount(scale=0.25).profile,
        "hadoop": hadoop_wordcount(scale=0.25).profile,
        "spark": spark_wordcount(scale=0.25).profile,
    }


class TestIndependentVector:
    def test_vector_length(self, wordcount_profiles):
        vector = independent_vector(wordcount_profiles["mpi"])
        assert vector.shape == (len(INDEPENDENT_METRIC_NAMES),)
        assert np.isfinite(vector).all()

    def test_no_platform_dependence(self, wordcount_profiles):
        # The vector is a pure function of the profile — recomputing
        # yields identical values (no simulation noise).
        a = independent_vector(wordcount_profiles["hadoop"])
        b = independent_vector(wordcount_profiles["hadoop"])
        assert np.array_equal(a, b)

    def test_stack_visible_in_code_footprint(self, wordcount_profiles):
        index = INDEPENDENT_METRIC_NAMES.index("log_code_footprint")
        mpi = independent_vector(wordcount_profiles["mpi"])[index]
        hadoop = independent_vector(wordcount_profiles["hadoop"])[index]
        assert hadoop > mpi + 1.0  # >2x footprint in log2 space

    def test_matrix_shape(self, wordcount_profiles):
        matrix = independent_matrix(list(wordcount_profiles.values()))
        assert matrix.shape == (3, len(INDEPENDENT_METRIC_NAMES))

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            independent_matrix([])


class TestIndependentReduction:
    def test_reduction_runs(self, wordcount_profiles):
        profiles = list(wordcount_profiles.values()) * 3
        names = [f"w{i}" for i in range(len(profiles))]
        result = reduce_workloads_independent(names, profiles, k=3, seed=1)
        assert result.n_clusters == 3

    def test_same_stack_clusters_together(self, wordcount_profiles):
        # Two copies of each stack's profile must land in one cluster.
        profiles = []
        names = []
        for stack, profile in wordcount_profiles.items():
            for copy in range(2):
                profiles.append(profile)
                names.append(f"{stack}-{copy}")
        result = reduce_workloads_independent(names, profiles, k=3, seed=1)
        for stack in wordcount_profiles:
            assert result.cluster_of(f"{stack}-0") == result.cluster_of(
                f"{stack}-1"
            )


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        assert adjusted_rand_index([0, 0, 1, 1], [5, 5, 9, 9]) == pytest.approx(1.0)

    def test_orthogonal_partitions_near_zero(self):
        ari = adjusted_rand_index([0, 0, 1, 1, 2, 2], [0, 1, 2, 0, 1, 2])
        assert ari < 0.2

    def test_symmetry(self):
        a = [0, 0, 1, 1, 2, 2, 2]
        b = [0, 1, 1, 1, 2, 0, 2]
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([0, 1], [0, 1, 2])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([0], [0])
