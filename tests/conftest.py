"""Shared fixtures: one characterization sweep reused across test modules."""

import pytest

from repro.experiments import ExperimentContext


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    """Keep CLI-written run records inside each test's tmp dir."""
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "repro-runs"))


@pytest.fixture(scope="session")
def ctx():
    """A session-wide experiment context at test scale."""
    return ExperimentContext(scale=0.35)


@pytest.fixture(scope="session")
def rep_counters(ctx):
    """Counters for all 17 representatives on the Xeon."""
    return ctx.representative_counters()


@pytest.fixture(scope="session")
def mpi_counters(ctx):
    """Counters for the six MPI workloads on the Xeon."""
    return ctx.mpi_counters()
