"""Failure-path coverage for the supervised sweep executor.

Exercises every resilience mechanism with deliberately misbehaving
cells (``tests.test_exec_cells``): worker SIGKILL mid-cell, cell timeout,
frozen-worker stall detection, poison-cell quarantine, degradation to
serial, and checkpoint resume with byte-identical merges.
"""

import json
import os

import pytest

from repro.errors import CellIntegrityError, ExecError
from repro.exec import (
    SweepCell,
    SweepCheckpoint,
    SweepExecutor,
    merge_results,
)


def make_cells(fn, count=3, tmp_path=None, **extra):
    if tmp_path is not None:
        extra["dir"] = str(tmp_path)
    return [
        SweepCell(
            workload=f"w{i}", platform="e5645", scale=0.1, seed=i,
            fn=f"tests.test_exec_cells.{fn}",
            extra=tuple(sorted(extra.items())),
        )
        for i in range(count)
    ]


def attempts_of(tmp_path, cell):
    name = cell.cell_id.replace("/", "_").replace("@", "_")
    path = os.path.join(str(tmp_path), f"{name}.attempts")
    if not os.path.exists(path):
        return 0
    with open(path) as handle:
        return int(handle.read())


def fast_executor(jobs, **overrides):
    options = dict(
        cell_timeout=30.0,
        backoff_base=0.01,
        backoff_cap=0.05,
        heartbeat_interval=0.1,
        stall_timeout=1.0,
    )
    options.update(overrides)
    return SweepExecutor(jobs=jobs, **options)


class TestHappyPath:
    def test_parallel_merge_matches_serial_bitwise(self, tmp_path):
        cells = make_cells("ok_cell", count=6, tmp_path=tmp_path / "a")
        os.makedirs(tmp_path / "a")
        serial = SweepExecutor(jobs=1).run(cells)
        parallel = fast_executor(3).run(cells)
        merged_serial = merge_results(cells, serial.results)
        merged_parallel = merge_results(cells, parallel.results)
        assert (
            json.dumps(merged_serial, sort_keys=True)
            == json.dumps(merged_parallel, sort_keys=True)
        )
        assert parallel.complete
        assert parallel.telemetry["cells_ok"] == 6

    def test_merge_requires_every_cell(self):
        cells = make_cells("ok_cell", count=2)
        outcome = SweepExecutor(jobs=1).run(cells[:1])
        with pytest.raises(ExecError):
            merge_results(cells, outcome.results)


class TestRetryAndQuarantine:
    def test_flaky_cell_retried_then_succeeds(self, tmp_path):
        cells = make_cells("flaky_cell", count=1, tmp_path=tmp_path,
                           fail_times=2)
        outcome = fast_executor(2).run(cells)
        assert outcome.complete
        result = outcome.results[cells[0].cell_id]
        assert result.attempts == 3
        assert outcome.telemetry["cells_retried"] == 2
        assert attempts_of(tmp_path, cells[0]) == 3

    def test_poison_cell_quarantined_after_k_identical_failures(
            self, tmp_path):
        poisoned = make_cells("crash_cell", count=1, tmp_path=tmp_path)
        healthy = make_cells("ok_cell", count=2, tmp_path=tmp_path)
        cells = poisoned + healthy
        outcome = fast_executor(2, poison_k=3, max_attempts=10).run(cells)
        assert not outcome.complete
        tombstone = outcome.quarantined[poisoned[0].cell_id]
        assert tombstone.status == "quarantined"
        assert tombstone.attempts == 3  # K identical failures, not 10
        assert len(set(tombstone.failures)) == 1
        assert "deterministic boom" in tombstone.failures[0]
        # The healthy cells finished despite the poison cell.
        for cell in healthy:
            assert cell.cell_id in outcome.results
        assert outcome.telemetry["cells_quarantined"] == 1

    def test_attempt_budget_quarantines_diverse_failures(self, tmp_path):
        cells = make_cells("flaky_cell", count=1, tmp_path=tmp_path,
                           fail_times=50)
        outcome = fast_executor(2, poison_k=99, max_attempts=4).run(cells)
        tombstone = outcome.quarantined[cells[0].cell_id]
        assert tombstone.attempts == 4

    def test_serial_mode_applies_same_policy(self, tmp_path):
        cells = make_cells("crash_cell", count=1, tmp_path=tmp_path)
        outcome = fast_executor(1, poison_k=3).run(cells)
        assert cells[0].cell_id in outcome.quarantined
        assert attempts_of(tmp_path, cells[0]) == 3


class TestWorkerFailures:
    def test_sigkill_mid_cell_restarts_worker_and_retries(self, tmp_path):
        cells = make_cells("sigkill_once_cell", count=2, tmp_path=tmp_path)
        outcome = fast_executor(2).run(cells)
        assert outcome.complete
        assert outcome.telemetry["worker_crashes"] >= 2
        assert outcome.telemetry["worker_restarts"] >= 2
        for cell in cells:
            assert outcome.results[cell.cell_id].metrics["value"] == 7.0

    def test_cell_timeout_sigkills_and_retries(self, tmp_path):
        cells = make_cells("hang_once_cell", count=1, tmp_path=tmp_path)
        outcome = fast_executor(2, cell_timeout=1.0).run(cells)
        assert outcome.complete
        assert outcome.telemetry["timeouts"] >= 1
        assert outcome.results[cells[0].cell_id].metrics["value"] == 5.0

    def test_frozen_worker_detected_by_missing_heartbeats(self, tmp_path):
        cells = make_cells("freeze_once_cell", count=1, tmp_path=tmp_path)
        # Generous cell timeout: only stall detection can catch this.
        # Ample attempts: on a loaded machine a fresh worker can be
        # starved past the stall window and killed again (an infra
        # failure, so it retries rather than poisoning the cell).
        outcome = fast_executor(2, cell_timeout=120.0, stall_timeout=0.8,
                                max_attempts=10).run(cells)
        assert outcome.complete
        assert outcome.telemetry["stalls"] >= 1
        assert outcome.results[cells[0].cell_id].metrics["value"] == 9.0

    def test_degrades_to_serial_when_workers_keep_dying(self, tmp_path):
        cells = make_cells("kill_worker_cell", count=3, tmp_path=tmp_path,
                           main_pid=os.getpid())
        outcome = fast_executor(2, degrade_after=2, max_attempts=50,
                                poison_k=99).run(cells)
        assert outcome.complete
        assert outcome.telemetry["degraded_serial"] == 1.0
        for cell in cells:
            assert outcome.results[cell.cell_id].metrics["value"] == 3.0


class TestCheckpointResume:
    def test_resume_after_interruption_is_byte_identical(self, tmp_path):
        state = tmp_path / "state"
        os.makedirs(state)
        cells = make_cells("ok_cell", count=6, tmp_path=state)

        # Uninterrupted serial reference.
        reference = merge_results(
            cells, SweepExecutor(jobs=1).run(cells).results
        )

        # "Crash" partway: only half the cells got journaled, and the
        # journal has a torn final line from the dying supervisor.
        checkpoint = SweepCheckpoint(str(tmp_path / "runs"), "t-abc-s0")
        checkpoint.initialise(config_hash="abc", seed=0, config={},
                              n_cells=len(cells))
        fast_executor(2).run(cells[:3], checkpoint=checkpoint)
        with open(checkpoint.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"cell_id": "w9@e5645+s9", "status"')  # torn

        # Resume with the full matrix: only the incomplete cells run.
        resumed_checkpoint = SweepCheckpoint(
            str(tmp_path / "runs"), "t-abc-s0"
        )
        outcome = fast_executor(2).run(
            cells, checkpoint=resumed_checkpoint, resume=True
        )
        assert outcome.telemetry["cells_from_checkpoint"] == 3
        assert outcome.telemetry["cells_run"] == 3
        for cell in cells[:3]:  # not re-executed after resume
            assert attempts_of(state, cell) == 2  # serial ref + first run
        merged = merge_results(cells, outcome.results)
        assert (
            json.dumps(merged, sort_keys=True)
            == json.dumps(reference, sort_keys=True)
        )

    def test_quarantined_cells_rerun_on_resume(self, tmp_path):
        state = tmp_path / "state"
        os.makedirs(state)
        cells = make_cells("flaky_cell", count=1, tmp_path=state,
                           fail_times=2)
        runs = str(tmp_path / "runs")
        checkpoint = SweepCheckpoint(runs, "q-abc-s0")
        checkpoint.initialise(config_hash="abc", seed=0, config={},
                              n_cells=1)
        first = fast_executor(1, max_attempts=2, poison_k=99).run(
            cells, checkpoint=checkpoint
        )
        assert cells[0].cell_id in first.quarantined

        second = fast_executor(1, max_attempts=2, poison_k=99).run(
            cells, checkpoint=SweepCheckpoint(runs, "q-abc-s0"), resume=True
        )
        assert second.complete  # third attempt overall succeeds
        assert second.results[cells[0].cell_id].metrics["value"] == 42.0


class TestMergeIntegrity:
    def test_tampered_metrics_fail_provenance_validation(self, tmp_path):
        state = tmp_path / "state"
        os.makedirs(state)
        cells = make_cells("ok_cell", count=1, tmp_path=state)
        outcome = SweepExecutor(jobs=1).run(cells)
        result = outcome.results[cells[0].cell_id]
        result.metrics["value"] += 1.0  # bit flip
        with pytest.raises(CellIntegrityError):
            merge_results(cells, outcome.results)

    def test_foreign_cell_result_rejected(self, tmp_path):
        state = tmp_path / "state"
        os.makedirs(state)
        cells = make_cells("ok_cell", count=2, tmp_path=state)
        outcome = SweepExecutor(jobs=1).run(cells)
        # Swap two results: each hash binds to the wrong spec now.
        a, b = cells[0].cell_id, cells[1].cell_id
        outcome.results[a], outcome.results[b] = (
            outcome.results[b], outcome.results[a],
        )
        outcome.results[a].cell_id = a
        outcome.results[b].cell_id = b
        with pytest.raises(CellIntegrityError):
            merge_results(cells, outcome.results)
