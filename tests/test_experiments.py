"""Integration tests: every experiment regenerates its paper shape."""

import pytest

from repro.experiments import (
    fig1_instruction_mix,
    fig2_integer_breakdown,
    fig3_ipc,
    fig4_cache,
    fig5_tlb,
    fig6to9_locality,
    stack_impact,
    system_behaviors,
    table1_datasets,
    table4_branch,
)


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig1_instruction_mix.run(ctx)

    def test_branch_ratio_near_paper(self, result):
        assert 0.15 < result.bigdata_branch < 0.23  # paper 18.7%

    def test_integer_ratio_near_paper(self, result):
        assert 0.32 < result.bigdata_integer < 0.45  # paper 38%

    def test_renders(self, result):
        text = result.render()
        assert "Figure 1" in text and "H-Read" in text

    def test_rows_complete(self, result):
        assert len(result.workload_rows) == 23  # 17 + 6 MPI
        assert len(result.suite_rows) == 6


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig2_integer_breakdown.run(ctx)

    def test_int_addr_dominates(self, result):
        assert result.avg_int_addr > 0.5  # paper 64%

    def test_data_movement_share(self, result):
        assert 0.6 < result.avg_data_movement < 0.85  # paper ~73%

    def test_with_branches_headline(self, result):
        assert 0.8 < result.avg_with_branches < 0.97  # paper up to 92%

    def test_renders(self, result):
        assert "Figure 2" in result.render()


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig3_ipc.run(ctx)

    def test_service_has_lowest_category_ipc(self, result):
        by_group = {row[0]: row[1] for row in result.group_rows}
        service = by_group["category: service"]
        assert service < by_group["category: data analysis"]
        assert service < by_group["category: interactive analysis"]

    def test_bigdata_avg_in_band(self, result):
        assert 0.8 < result.bigdata_ipc < 1.5  # paper 1.28

    def test_hpcc_fastest_suite(self, result):
        assert result.suite_ipcs["HPCC"] == max(result.suite_ipcs.values())

    def test_ipc_disparities_exist(self, result):
        ipcs = [row[1] for row in result.workload_rows]
        assert max(ipcs) > 2 * min(ipcs)  # "significant disparities"


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig4_cache.run(ctx)

    def test_bigdata_l1i_band(self, result):
        assert 10 < result.bigdata["l1i_mpki"] < 22  # paper 15

    def test_bigdata_l3_band(self, result):
        assert 0.4 < result.bigdata["l3_mpki"] < 2.5  # paper 1.2

    def test_h_read_is_worst_l1i(self, result):
        by_workload = {row[0]: row[1] for row in result.workload_rows}
        assert by_workload["H-Read"] == max(
            value for name, value in by_workload.items()
            if not name.startswith("M-")
        )
        assert by_workload["H-Read"] > 35  # paper 51

    def test_service_category_worst(self, result):
        by_group = {row[0]: row[1] for row in result.group_rows}
        assert by_group["category: service"] > by_group["category: data analysis"]


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig5_tlb.run(ctx)

    def test_itlb_small(self, result):
        assert result.bigdata_itlb < 0.5  # paper 0.05

    def test_dtlb_band(self, result):
        assert 0.2 < result.bigdata_dtlb < 3.0  # paper 0.9

    def test_service_has_highest_itlb(self, result):
        by_group = {row[0]: row[1] for row in result.group_rows}
        assert by_group["category: service"] >= by_group["category: data analysis"]


class TestLocality:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig6to9_locality.run(ctx, trace_refs=15_000)

    def test_hadoop_instruction_curve_above_parsec(self, result):
        hadoop = result.instruction["Hadoop-workloads"]
        parsec = result.instruction["PARSEC-workloads"]
        # At small capacities Hadoop misses far more (Figure 6).
        for i, size in enumerate(result.sizes_kb):
            if size <= 256:
                assert hadoop[i] > parsec[i]

    def test_footprint_knees(self, result):
        hadoop_knee = result.knees_kb["Hadoop-workloads"]
        parsec_knee = result.knees_kb["PARSEC-workloads"]
        # Paper: ~1024 KB vs ~128 KB.
        assert hadoop_knee >= 4 * parsec_knee

    def test_mpi_matches_parsec(self, result):
        mpi = result.instruction["MPI-workloads"]
        hadoop = result.instruction["Hadoop-workloads"]
        at_32kb = result.sizes_kb.index(32)
        # Figure 9: MPI far below Hadoop at L1I-like sizes.
        assert mpi[at_32kb] < 0.5 * hadoop[at_32kb]

    def test_data_curves_converge(self, result):
        hadoop = result.data["Hadoop-workloads"]
        parsec = result.data["PARSEC-workloads"]
        at_large = result.sizes_kb.index(4096)
        # Figure 7: close at large capacities.
        assert abs(hadoop[at_large] - parsec[at_large]) < 0.05

    def test_unified_curves_converge_beyond_1mb(self, result):
        hadoop = result.unified["Hadoop-workloads"]
        parsec = result.unified["PARSEC-workloads"]
        at_2mb = result.sizes_kb.index(2048)
        assert abs(hadoop[at_2mb] - parsec[at_2mb]) < 0.06

    def test_curves_monotone(self, result):
        for series in result.instruction.values():
            for small, large in zip(series, series[1:]):
                assert large <= small + 0.01


class TestStackImpact:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return stack_impact.run(ctx)

    def test_mpi_ipc_higher(self, result):
        assert result.mpi_avg["ipc"] > result.others_avg["ipc"]
        assert result.ipc_gap > 0.15  # paper 21%

    def test_l1i_order_of_magnitude(self, result):
        # Paper: one order of magnitude between implementations.
        assert result.l1i_ratio > 3.0

    def test_wordcount_triplet_ordering(self, result):
        by_workload = {row[0]: row for row in result.rows}
        # IPC: MPI > Hadoop > Spark (paper 1.8 / 1.1 / 0.9).
        assert by_workload["M-WordCount"][1] > by_workload["H-WordCount"][1]
        assert by_workload["H-WordCount"][1] > by_workload["S-WordCount"][1]
        # L1I: MPI < Hadoop < Spark (paper 2 / 7 / 17).
        assert by_workload["M-WordCount"][2] < by_workload["H-WordCount"][2]
        assert by_workload["H-WordCount"][2] < by_workload["S-WordCount"][2]

    def test_l2_l3_stack_effect(self, result):
        assert result.mpi_avg["l2_mpki"] < result.others_avg["l2_mpki"]


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return table4_branch.run(ctx)

    def test_atom_mispredicts_more(self, result):
        assert result.d510_avg > result.e5645_avg
        assert 1.5 < result.ratio < 5.0  # paper ~2.8x

    def test_absolute_bands(self, result):
        assert result.e5645_avg < 0.08   # paper 2.8%
        assert result.d510_avg < 0.20    # paper 7.8%

    def test_renders(self, result):
        assert "E5645" in result.render()


class TestTable1:
    def test_catalog_renders(self):
        result = table1_datasets.run()
        assert len(result.rows) == 7
        assert "Table 1" in result.render()


class TestSystemBehaviors:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return system_behaviors.run(ctx)

    def test_all_representatives_classified(self, result):
        assert result.total == 17

    def test_majority_match_table2(self, result):
        # The classification rules operate on simulated resource usage;
        # most of Table 2's column should reproduce.
        assert result.match_ratio >= 0.5

    def test_renders(self, result):
        assert "cpu util" in result.render()
