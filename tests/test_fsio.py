"""The durable-I/O layer: write shapes, drop accounting, fault injection.

Covers the three write shapes of DESIGN §5i against both backends:
``write_json_atomic`` (no partial ever visible, no tmp litter on
failure), :class:`JournalWriter` (durable, torn-tail isolation) and
:class:`BestEffortWriter` (degrades but *counts*).  Then the
:class:`FaultyIO` simulator itself: transparency when fault-free,
deterministic crash states, errno short writes, and fsync lies.
"""

import errno
import json
import os

import pytest

from repro.fsio import (
    DEFAULT_FAULT_ERRNOS,
    BestEffortWriter,
    FaultyIO,
    JournalWriter,
    SimulatedCrash,
    fsync_dir,
    quarantine_corrupt,
    write_json_atomic,
)


class TestWriteJsonAtomic:
    def test_round_trip_and_no_litter(self, tmp_path):
        path = str(tmp_path / "x.json")
        write_json_atomic(path, {"a": 1})
        write_json_atomic(path, {"a": 2})
        assert json.load(open(path)) == {"a": 2}
        assert os.listdir(tmp_path) == ["x.json"]

    def test_failed_write_cleans_its_tmp(self, tmp_path):
        path = str(tmp_path / "x.json")
        write_json_atomic(path, {"a": 1})
        # Inject ENOSPC on the payload write (op sequence per file:
        # open=0 write=1): the error must propagate, the old content
        # must survive, and no tmp file may remain.
        io = FaultyIO(errors={1: errno.ENOSPC})
        with pytest.raises(OSError):
            write_json_atomic(path, {"a": 2}, io=io)
        assert json.load(open(path)) == {"a": 1}
        assert os.listdir(tmp_path) == ["x.json"]

    def test_unserialisable_payload_cleans_its_tmp(self, tmp_path):
        path = str(tmp_path / "x.json")
        with pytest.raises(TypeError):
            write_json_atomic(path, {"bad": object()})
        assert os.listdir(tmp_path) == []

    def test_crash_mid_write_leaks_tmp_for_fsck(self, tmp_path):
        path = str(tmp_path / "x.json")
        io = FaultyIO(seed=1, crash_at=1)  # dies during the tmp write
        with pytest.raises(SimulatedCrash):
            write_json_atomic(path, {"a": 1}, io=io)
        io.apply_crash()
        # A dead process cannot tidy up: the tmp file is litter now
        # (possibly torn to zero bytes), and the target never appeared.
        assert not os.path.exists(path)
        leaked = [n for n in os.listdir(tmp_path) if ".tmp." in n]
        assert len(leaked) <= 1  # torn to nothing, or leaked

    def test_fsync_dir_swallows_refusal(self, tmp_path):
        fsync_dir(str(tmp_path))  # real dir: fine
        fsync_dir(str(tmp_path / "missing"))  # refused: advisory, no raise


class TestJournalWriter:
    def test_append_is_readable_line_per_record(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path)
        writer.append({"cell_id": "a"})
        writer.append({"cell_id": "b"})
        writer.close()
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert [l["cell_id"] for l in lines] == ["a", "b"]

    def test_torn_tail_isolated_before_new_appends(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"cell_id": "a"}\n{"cell_id": "b", "st')  # torn
        writer = JournalWriter(path)
        writer.append({"cell_id": "c"})
        writer.close()
        lines = open(path).read().splitlines()
        # The torn fragment sits alone on its line; the new record is
        # intact and never concatenated with it.
        parsed = []
        for line in lines:
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError:
                parsed.append(None)
        assert parsed[0] == {"cell_id": "a"}
        assert parsed[1] is None
        assert parsed[-1] == {"cell_id": "c"}

    def test_io_errors_propagate(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        io = FaultyIO(errors={0: errno.EIO})  # fails the makedirs
        writer = JournalWriter(path, io=io)
        with pytest.raises(OSError):
            writer.append({"cell_id": "a"})


class TestBestEffortWriter:
    def test_counts_drops_and_warns_once(self, tmp_path, capsys):
        # The target path is a directory: every write fails.
        target = tmp_path / "stream.jsonl"
        target.mkdir()
        writer = BestEffortWriter(str(target), label="test stream")
        assert writer.append({"e": 1}) is False
        assert writer.append({"e": 2}) is False
        assert writer.stats.writer_errors == 1
        assert writer.stats.dropped_events == 2
        assert writer.stats.first_error
        err = capsys.readouterr().err
        assert err.count("can no longer write") == 1

    def test_unserialisable_event_is_a_counted_drop(self, tmp_path):
        writer = BestEffortWriter(str(tmp_path / "s.jsonl"))
        assert writer.append({"bad": object()}) is False
        assert writer.stats.dropped_events == 1

    def test_telemetry_keys(self, tmp_path):
        writer = BestEffortWriter(str(tmp_path / "s.jsonl"))
        writer.append({"e": 1})
        writer.close()
        telemetry = writer.telemetry("stream")
        assert telemetry == {
            "stream_writes": 1.0,
            "stream_writer_errors": 0.0,
            "stream_dropped_events": 0.0,
        }


class TestFaultyIO:
    def write_with(self, io, path, payload):
        handle = io.open(path, "a")
        io.write(handle, payload)
        io.flush(handle)
        io.fsync(handle)
        io.close(handle)

    def test_fault_free_backend_is_transparent(self, tmp_path):
        path = str(tmp_path / "x.json")
        write_json_atomic(path, {"a": [1, 2, 3]}, io=FaultyIO())
        assert json.load(open(path)) == {"a": [1, 2, 3]}

    def test_crash_at_is_deterministic(self, tmp_path):
        for attempt in range(2):
            path = str(tmp_path / f"f{attempt}.txt")
            io = FaultyIO(seed=7, crash_at=1)
            with pytest.raises(SimulatedCrash) as exc:
                self.write_with(io, path, "hello world\n")
            assert exc.value.op_index == 1
            io.apply_crash()
            sizes = (
                os.path.getsize(path) if os.path.exists(path) else -1
            )
            if attempt == 0:
                first = sizes
            else:
                assert sizes == first  # same seed, same torn length

    def test_dead_process_cannot_keep_writing(self, tmp_path):
        io = FaultyIO(crash_at=0)
        with pytest.raises(SimulatedCrash):
            io.open(str(tmp_path / "a"), "a")
        with pytest.raises(SimulatedCrash):
            io.makedirs(str(tmp_path / "b"))

    def test_synced_data_survives_crash(self, tmp_path):
        path = str(tmp_path / "f.txt")
        io = FaultyIO(seed=0, crash_at=100)
        self.write_with(io, path, "durable\n")  # fsynced before crash
        handle = io.open(path, "a")
        io.write(handle, "volatile")
        with pytest.raises(SimulatedCrash):
            for _ in range(100):
                io.flush(handle)
        io.apply_crash()
        content = open(path).read()
        assert content.startswith("durable\n")

    def test_fsync_lies_leave_tail_volatile(self, tmp_path):
        path = str(tmp_path / "f.txt")
        # Crash far past the writes; with a lying fsync the whole
        # payload stays in the loss window.
        io = FaultyIO(seed=5, crash_at=6, fsync_lies=True)
        with pytest.raises(SimulatedCrash):
            self.write_with(io, path, "x" * 64)
            handle = io.open(path, "a")
            io.write(handle, "y" * 64)
            io.flush(handle)
        events = io.apply_crash()
        assert os.path.getsize(path) < 128
        assert any("torn" in e for e in events)

    def test_errno_injection_is_a_short_write(self, tmp_path):
        path = str(tmp_path / "f.txt")
        io = FaultyIO(seed=3, errors={1: errno.ENOSPC})
        handle = io.open(path, "a")
        with pytest.raises(OSError) as exc:
            io.write(handle, "a" * 100)
        assert exc.value.errno == errno.ENOSPC
        io.close(handle)
        assert os.path.getsize(path) < 100  # seeded prefix, not all

    def test_replace_rollback_leaks_tmp(self, tmp_path):
        # A rename not followed by a parent-dir fsync may be rolled
        # back by the crash.  Find a seed whose post-crash RNG does.
        for seed in range(20):
            base = tmp_path / f"s{seed}"
            base.mkdir()
            path, tmp = str(base / "x.json"), str(base / "x.json.tmp.1")
            io = FaultyIO(seed=seed)
            self.write_with(io, tmp, '{"a": 1}\n')
            io.replace(tmp, path)  # no fsync_path: rename not durable
            io.crashed = True
            io.apply_crash()
            leaked = [n for n in os.listdir(base) if ".tmp." in n]
            if leaked:
                # Rolled back: new content only in the leaked tmp file.
                assert not os.path.exists(path)
                assert open(os.path.join(base, leaked[0])).read() == (
                    '{"a": 1}\n'
                )
                return
        pytest.fail("no seed in 0..19 rolled the unsynced rename back")

    def test_op_log_tail_renders_window(self, tmp_path):
        io = FaultyIO()
        self.write_with(io, str(tmp_path / "f"), "x")
        tail = io.op_log_tail(window=3)
        assert len(tail) == 3
        assert all(tail[i].startswith("op ") for i in range(3))

    def test_default_fault_errnos(self):
        assert errno.ENOSPC in DEFAULT_FAULT_ERRNOS
        assert errno.EIO in DEFAULT_FAULT_ERRNOS


class TestQuarantine:
    def test_quarantine_numbered_on_repeat(self, tmp_path, capsys):
        for _ in range(2):
            path = str(tmp_path / "bad.json")
            open(path, "w").write("{ nope")
            moved = quarantine_corrupt(path)
            assert not os.path.exists(path)
        assert os.path.exists(str(tmp_path / "bad.json.corrupt"))
        assert moved == str(tmp_path / "bad.json.corrupt.1")
        assert "quarantined" in capsys.readouterr().err
