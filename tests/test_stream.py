"""Live progress stream: event schema, renderer, OpenMetrics view.

Exercises the observability tentpole's second leg end to end: a traced
executor run drives a real :class:`ProgressStream` through the
``observer`` hook, and the resulting ``progress.jsonl`` is checked for
the wire-format guarantees METRICS.md documents (schema version stamp,
sweep id, derived throughput/ETA on ``cell-finished``).
"""

import io
import json
import os

from repro.obs import (
    PROGRESS_SCHEMA_VERSION,
    ProgressStream,
    TerminalRenderer,
    read_progress,
    render_openmetrics,
)

from tests.test_exec_supervisor import fast_executor, make_cells


def run_streamed(tmp_path, cells, jobs, **overrides):
    path = str(tmp_path / "progress.jsonl")
    stream = ProgressStream(path, sweep="test-sweep")
    outcome = fast_executor(jobs, observer=stream, **overrides).run(cells)
    stream.close()
    return outcome, read_progress(path)


class TestProgressStream:
    def test_events_carry_schema_version_sweep_and_timestamp(self, tmp_path):
        _, events = run_streamed(tmp_path, make_cells("ok_cell", 2), jobs=2)
        assert events, "a sweep must stream at least start/finish events"
        for event in events:
            assert event["v"] == PROGRESS_SCHEMA_VERSION
            assert event["sweep"] == "test-sweep"
            assert isinstance(event["t"], float)

    def test_lifecycle_event_sequence(self, tmp_path):
        outcome, events = run_streamed(
            tmp_path, make_cells("ok_cell", 3), jobs=2
        )
        assert outcome.complete
        kinds = [e["event"] for e in events]
        assert kinds[0] == "sweep-started"
        assert kinds[-1] == "sweep-finished"
        assert kinds.count("worker-started") == 2
        assert kinds.count("cell-started") == 3
        assert kinds.count("cell-finished") == 3
        assert events[0]["total"] == 3
        assert events[-1]["done"] == 3

    def test_cell_finished_derives_throughput_and_eta(self, tmp_path):
        _, events = run_streamed(tmp_path, make_cells("ok_cell", 2), jobs=1)
        finished = [e for e in events if e["event"] == "cell-finished"]
        assert len(finished) == 2
        for event in finished:
            assert event["cells_per_s"] > 0
        assert finished[0]["eta_s"] > 0  # one cell still outstanding
        assert finished[-1]["eta_s"] == 0  # sweep drained

    def test_retry_and_quarantine_events(self, tmp_path):
        cells = make_cells(
            "flaky_cell", count=1, tmp_path=tmp_path, fail_times=1
        )
        cells += make_cells("crash_cell", count=1, tmp_path=tmp_path)
        outcome, events = run_streamed(tmp_path, cells, jobs=1)
        kinds = [e["event"] for e in events]
        assert "cell-retried" in kinds
        assert "cell-quarantined" in kinds
        assert outcome.quarantined

    def test_stream_without_path_is_a_no_op_sink(self):
        stream = ProgressStream(None)
        stream({"event": "cell-finished", "done": 1, "total": 2})
        stream.close()  # nothing written anywhere, nothing raised

    def test_read_progress_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        path.write_text(
            json.dumps({"event": "sweep-started", "total": 1}) + "\n"
            + "{\"event\": \"torn\n"
            + "[1, 2, 3]\n"
            + json.dumps({"no_event_key": True}) + "\n"
        )
        events = read_progress(str(path))
        assert [e["event"] for e in events] == ["sweep-started"]

    def test_read_progress_missing_file_is_empty(self, tmp_path):
        assert read_progress(str(tmp_path / "absent.jsonl")) == []


class TestTerminalRenderer:
    def test_renders_progress_line_in_place(self):
        out = io.StringIO()
        renderer = TerminalRenderer(out)
        renderer.update({"event": "sweep-started", "total": 4})
        renderer.update(
            {
                "event": "cell-finished", "done": 2, "total": 4,
                "cells_per_s": 1.5, "eta_s": 1.3,
            }
        )
        renderer.update({"event": "cell-retried", "cell_id": "c"})
        renderer.update({"event": "sweep-finished", "done": 4, "total": 4})
        text = out.getvalue()
        assert "\r" in text
        assert "sweep 2/4 cells" in text
        assert "1.50 cells/s" in text
        assert "eta 1s" in text
        assert "1 retried" in text
        assert "done" in text
        renderer.close()
        assert out.getvalue().endswith("\n")

    def test_streams_through_renderer(self, tmp_path):
        out = io.StringIO()
        stream = ProgressStream(
            str(tmp_path / "p.jsonl"), renderer=TerminalRenderer(out)
        )
        fast_executor(1, observer=stream).run(make_cells("ok_cell", 2))
        stream.close()
        assert "sweep 2/2 cells" in out.getvalue()


class TestOpenMetrics:
    def test_render_openmetrics_over_sweep_dir(self, tmp_path):
        runs = str(tmp_path / "runs")
        checkpoint_dir = os.path.join(runs, "sweeps", "demo")
        from repro.exec import SweepCheckpoint

        cells = make_cells("ok_cell", 2)
        checkpoint = SweepCheckpoint(runs, "demo")
        checkpoint.initialise(
            config_hash="cafe", seed=0, config={}, n_cells=len(cells)
        )
        stream = ProgressStream(
            os.path.join(checkpoint_dir, "progress.jsonl"), sweep="demo"
        )
        outcome = fast_executor(
            1, observer=stream
        ).run(cells, checkpoint=checkpoint)
        stream.close()
        assert outcome.complete

        text = render_openmetrics(runs)
        assert text.endswith("# EOF\n")
        assert 'repro_sweep_cells{sweep="demo",state="total"} 2' in text
        assert 'repro_sweep_cells{sweep="demo",state="done"} 2' in text
        assert 'repro_sweep_cells_per_second{sweep="demo"}' in text
        # HELP/TYPE framing immediately precedes each family's samples.
        lines = text.splitlines()
        for family in ("repro_sweep_cells", "repro_sweep_cells_per_second"):
            first = min(
                i for i, line in enumerate(lines)
                if line.startswith(family + "{")
            )
            assert lines[first - 1] == f"# TYPE {family} gauge"

    def test_render_openmetrics_empty_dir(self, tmp_path):
        text = render_openmetrics(str(tmp_path / "empty"))
        assert text.endswith("# EOF\n")
        assert "repro_registry_records" in text  # framing always present

    def test_build_info_gauge_carries_schema_versions(self, tmp_path):
        from repro.obs import SCHEMA_VERSION

        text = render_openmetrics(str(tmp_path / "empty"))
        lines = text.splitlines()
        samples = [
            line for line in lines if line.startswith("repro_build_info{")
        ]
        assert len(samples) == 1
        sample = samples[0]
        assert sample.endswith("} 1")
        assert f'record_schema="{SCHEMA_VERSION}"' in sample
        assert f'progress_schema="{PROGRESS_SCHEMA_VERSION}"' in sample
        assert 'git_sha="' in sample
        # Its HELP/TYPE framing precedes the sample.
        index = lines.index(sample)
        assert lines[index - 1] == "# TYPE repro_build_info gauge"
        assert lines[index - 2].startswith("# HELP repro_build_info ")

    def test_every_family_gets_help_and_type_even_when_empty(self, tmp_path):
        # An empty run directory still exposes the full metric schema:
        # scrapers learn every family name from any single scrape.
        text = render_openmetrics(str(tmp_path / "empty"))
        lines = text.splitlines()
        for family in (
            "repro_build_info",
            "repro_registry_records",
            "repro_exec_telemetry",
            "repro_sweep_cells",
            "repro_sweep_cells_per_second",
            "repro_sweep_eta_seconds",
        ):
            assert f"# TYPE {family} gauge" in lines
            assert any(
                line.startswith(f"# HELP {family} ") for line in lines
            ), family

    def test_eof_is_the_final_line(self, tmp_path):
        text = render_openmetrics(str(tmp_path / "empty"))
        assert text.splitlines()[-1] == "# EOF"


class TestStreamTelemetry:
    def test_healthy_stream_counts_writes_no_drops(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        stream = ProgressStream(path, sweep="s")
        stream.emit({"event": "sweep-started", "total": 1})
        stream.emit({"event": "cell-finished", "done": 1, "total": 1})
        stream.close()
        telemetry = stream.telemetry()
        assert telemetry["stream_writes"] == 2.0
        assert telemetry["stream_writer_errors"] == 0.0
        assert telemetry["stream_dropped_events"] == 0.0

    def test_dead_sink_counts_drops_and_warns_once(self, tmp_path, capsys):
        # The stream path is a directory: every append fails.  The
        # sweep must not fail, but every dropped event is counted and
        # the first failure warns on stderr exactly once.
        target = tmp_path / "progress.jsonl"
        target.mkdir()
        stream = ProgressStream(str(target), sweep="s")
        for i in range(3):
            stream.emit({"event": "cell-finished", "done": i, "total": 3})
        stream.close()
        telemetry = stream.telemetry()
        assert telemetry["stream_writer_errors"] == 1.0
        assert telemetry["stream_dropped_events"] == 3.0
        assert capsys.readouterr().err.count("can no longer write") == 1

    def test_pathless_stream_has_no_telemetry(self):
        assert ProgressStream(None).telemetry() == {}
