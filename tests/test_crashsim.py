"""The crash-consistency campaign: sampling, probe cells, a small run.

The full campaign (CI-sized) runs in the workflow; here we keep the
point counts small so the suite stays fast, and separately pin down
the deterministic pieces (probe cell, sampling, fidelity metrics).
"""

import json

from repro.analysis.crashsim import (
    CampaignPoint,
    PROBE_CELL_FN,
    _sample_points,
    probe_cell,
    run_campaign,
)
from repro.cli import main


class TestProbeCell:
    def test_closed_form_and_deterministic(self):
        spec = {"workload": "wordcount", "platform": "e5645",
                "scale": 0.2, "seed": 1}
        first = probe_cell(spec)
        assert first == probe_cell(dict(spec))
        assert first["metrics"]["value"] == 1 * 10.0 + len("wordcount")
        assert first["metrics"]["scale"] == 0.2

    def test_dotted_path_resolves(self):
        from repro.exec.cells import resolve_cell_fn
        assert resolve_cell_fn(PROBE_CELL_FN) is probe_cell


class TestSamplePoints:
    def test_empty_and_degenerate(self):
        assert _sample_points(0, 8) == []
        assert _sample_points(10, 0) == []
        assert _sample_points(10, 1) == [9]

    def test_small_op_space_is_exhaustive(self):
        assert _sample_points(3, 8) == [0, 1, 2]

    def test_stride_includes_first_and_last(self):
        points = _sample_points(100, 10)
        assert points[0] == 0
        assert points[-1] == 99
        assert len(points) == 10
        assert points == sorted(set(points))


class TestCampaign:
    def test_small_campaign_passes(self, tmp_path):
        result = run_campaign(
            str(tmp_path), seed=0, jobs=2,
            max_points=3, errno_points=2, fsync_lie_points=1,
        )
        assert result.ok
        assert result.silent_loss == 0
        assert result.n_ops > 0
        assert len(result.points) == 3 + 2 + 1
        statuses = {p.status for p in result.points}
        assert statuses <= {"clean", "recovered", "survived"}
        # At least one sampled crash point actually needed recovery.
        assert any(p.status in ("recovered", "clean")
                   for p in result.points if p.kind == "crash")

    def test_fidelity_metrics_and_render(self, tmp_path):
        result = run_campaign(
            str(tmp_path), seed=1, jobs=2,
            max_points=2, errno_points=1, fsync_lie_points=1,
        )
        metrics = result.fidelity_metrics()
        assert metrics["crashsim.failed"] == 0.0
        assert metrics["crashsim.silent_loss"] == 0.0
        assert metrics["crashsim.points"] == 4.0
        assert metrics["crashsim.ops"] == float(result.n_ops)
        assert result.render().strip().endswith("verdict: PASS")

    def test_failed_point_serialises_crash_trace(self):
        point = CampaignPoint(
            kind="crash", op=7, detail="x", status="failed",
            crash_trace={"op_log_tail": ["op 7: write /x"]},
        )
        payload = point.to_dict()
        assert payload["status"] == "failed"
        assert payload["crash_trace"]["op_log_tail"]


class TestCrashsimCli:
    def test_cli_runs_and_saves_record(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        rc = main([
            "--runs-dir", runs, "crashsim",
            "--max-points", "2", "--errno-points", "1",
            "--fsync-lie-points", "1", "--json",
            "--work-dir", str(tmp_path / "work"),
            "--artifact-dir", str(tmp_path / "artifacts"),
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["silent_loss"] == 0
        assert len(payload["points"]) == 4
        from repro.obs.registry import RunRegistry
        records = RunRegistry(runs).records("crashsim")
        assert len(records) == 1
        assert records[0].metrics["crashsim.failed"] == 0.0
