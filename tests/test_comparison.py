"""Tests for the comparison suites and their paper-relative orderings."""

import numpy as np
import pytest

from repro.comparison import SUITES, run_suite
from repro.comparison.base import NativeBenchmark
from repro.comparison.kernels import (
    dgemm,
    fsm_parse,
    grid_sssp,
    hash_churn,
    rle_compress,
    stream_triad,
    transaction_mix,
)
from repro.stacks.base import Meter


class TestKernelsCompute:
    def test_rle_compresses(self):
        meter = Meter()
        out_len = rle_compress(meter, scale=0.2)
        assert out_len > 0
        assert meter.bytes_in > out_len  # compression happened

    def test_fsm_counts_tokens(self):
        meter = Meter()
        tokens = fsm_parse(meter, scale=0.2)
        assert tokens > 0

    def test_sssp_finds_path(self):
        meter = Meter()
        distance = grid_sssp(meter, scale=0.3)
        assert distance > 0

    def test_hash_churn_hits(self):
        meter = Meter()
        hits = hash_churn(meter, scale=0.2)
        assert hits > 0

    def test_dgemm_fp_ops(self):
        meter = Meter()
        dgemm(meter, scale=0.2)
        assert meter.fp_ops > 1e5

    def test_stream_records_bytes(self):
        meter = Meter()
        stream_triad(meter, scale=0.1)
        assert meter.bytes_in > 0 and meter.bytes_out > 0

    def test_transactions_commit(self):
        meter = Meter()
        committed = transaction_mix(meter, scale=0.2)
        assert committed > 1000


class TestSuiteCatalog:
    def test_six_suites(self):
        assert set(SUITES) == {
            "SPECINT", "SPECFP", "PARSEC", "HPCC", "CloudSuite", "TPC-C",
        }

    def test_member_counts_match_paper_setup(self):
        assert len(SUITES["PARSEC"]) == 12   # all 12 benchmarks
        assert len(SUITES["HPCC"]) == 7      # all 7 benchmarks
        assert len(SUITES["CloudSuite"]) == 6
        assert len(SUITES["SPECINT"]) == 12  # all 12 INT benchmarks
        assert len(SUITES["SPECFP"]) == 10

    def test_profiles_build(self):
        for suite in SUITES.values():
            for benchmark in suite[:2]:
                profile = benchmark.profile(scale=0.2)
                assert profile.instructions > 0
                assert profile.mix.total > 0


class TestPaperOrderings:
    """The relative suite-level facts the paper's §5 relies on."""

    @pytest.fixture(scope="class")
    def averages(self, ctx):
        metrics = (
            "ipc", "ratio_branch", "ratio_integer", "ratio_fp",
            "l1i_mpki", "l2_mpki", "l3_mpki", "dtlb_mpki",
        )
        table = {}
        for suite_name in SUITES:
            samples = [
                c.metric_dict() for c in ctx.suite_counters(suite_name)
            ]
            table[suite_name] = {
                m: float(np.mean([s[m] for s in samples])) for m in metrics
            }
        table["bigdata"] = {
            m: ctx.bigdata_average(m) for m in metrics
        }
        return table

    def test_bigdata_has_more_branches(self, averages):
        bigdata = averages["bigdata"]["ratio_branch"]
        for suite in ("HPCC", "PARSEC", "SPECFP", "SPECINT"):
            assert bigdata > averages[suite]["ratio_branch"]

    def test_tpcc_branchiest(self, averages):
        assert averages["TPC-C"]["ratio_branch"] > averages["bigdata"]["ratio_branch"]

    def test_integer_dominated_workloads(self, averages):
        # Big data ~38%, close to SPECINT/CloudSuite/TPC-C, above SPECFP/HPCC.
        assert averages["bigdata"]["ratio_integer"] > averages["SPECFP"]["ratio_integer"]
        assert averages["bigdata"]["ratio_integer"] > averages["HPCC"]["ratio_fp"]

    def test_fp_suites_have_fp(self, averages):
        assert averages["SPECFP"]["ratio_fp"] > 0.2
        assert averages["bigdata"]["ratio_fp"] < 0.1

    def test_ipc_ordering(self, averages):
        # Paper: HPCC 1.5 > PARSEC 1.28 ≈ bigdata 1.28 > SPECFP 1.1 > SPECINT 0.9.
        assert averages["HPCC"]["ipc"] > averages["PARSEC"]["ipc"]
        assert averages["PARSEC"]["ipc"] > averages["SPECINT"]["ipc"]
        assert averages["bigdata"]["ipc"] > averages["SPECINT"]["ipc"] * 0.9

    def test_l1i_ordering(self, averages):
        # Paper: CloudSuite 32 > bigdata 15 > SPECINT/SPECFP/PARSEC/HPCC.
        assert averages["CloudSuite"]["l1i_mpki"] > averages["bigdata"]["l1i_mpki"]
        for suite in ("SPECINT", "SPECFP", "PARSEC", "HPCC"):
            assert averages["bigdata"]["l1i_mpki"] > averages[suite]["l1i_mpki"]

    def test_l2_bigdata_above_hpc_below_services(self, averages):
        assert averages["bigdata"]["l2_mpki"] > averages["HPCC"]["l2_mpki"]
        assert averages["bigdata"]["l2_mpki"] > averages["PARSEC"]["l2_mpki"]
        assert averages["bigdata"]["l2_mpki"] < averages["CloudSuite"]["l2_mpki"]

    def test_l3_bigdata_smallest(self, averages):
        # Paper: big data L3 MPKI smaller than all other suites.
        for suite in SUITES:
            assert (
                averages["bigdata"]["l3_mpki"]
                < averages[suite]["l3_mpki"] + 1.0
            )

    def test_dtlb_bigdata_small(self, averages):
        assert averages["bigdata"]["dtlb_mpki"] < averages["CloudSuite"]["dtlb_mpki"]
        assert averages["bigdata"]["dtlb_mpki"] < averages["TPC-C"]["dtlb_mpki"]
