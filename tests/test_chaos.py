"""Tests for ``repro.chaos``: invariant auditing, seeded campaigns,
plan shrinking and replay files.

The mutation tests are the suite's teeth: they deliberately re-break
the simulator's accounting (double-crediting interrupted transfers,
dropping chunk remainders) and assert the auditor catches the bug, the
shrinker minimises the violating plan, and the replay reproduces the
identical violation run after run.
"""

import pytest

from repro.chaos import (
    InvariantAuditor,
    generate_campaign,
    make_plan,
    run_case,
    run_plan,
    shrink_plan,
    violation_signature,
)
from repro.chaos.campaign import SCENARIOS, STACKS, WORKLOADS, baseline_elapsed
from repro.chaos.replay import (
    load_replay,
    plan_from_dict,
    plan_to_dict,
    replay_to_dict,
    save_replay,
)
from repro.cluster.cluster import Cluster
from repro.cluster.disk import Disk
from repro.cluster.events import Simulation
from repro.cluster.faults import (
    DiskDegrade,
    FaultPlan,
    NetworkPartition,
    NodeCrash,
)
from repro.errors import (
    FaultPlanError,
    InvariantViolation,
    JobFailedError,
    SimulationError,
)
from repro.stacks.scheduler import (
    RecoveryPolicy,
    TaskDescriptor,
    _WaveScheduler,
    run_waves,
)

#: Fast failure detection so faulted unit runs converge quickly.
FAST_POLICY = RecoveryPolicy(
    max_attempts=4,
    heartbeat_timeout=0.01,
    heartbeat_interval=0.01,
    retry_backoff=0.01,
)


def audited_run_waves(plan, tasks, n_nodes=3, policy=FAST_POLICY):
    """One ``run_waves`` job on a fresh audited simulation, drained."""
    auditor = InvariantAuditor()
    sim = Simulation(auditor=auditor)
    cluster = Cluster(sim=sim, n_nodes=n_nodes)
    aborted = False
    try:
        run_waves(
            cluster, tasks, instruction_rate=1e9, faults=plan, policy=policy
        )
    except JobFailedError:
        aborted = True
    for _ in range(50):
        try:
            sim.run()
            break
        except JobFailedError:
            aborted = True
    auditor.check_drained(sim, cluster, aborted=aborted)
    return auditor


#: A wave whose tasks are big enough to be mid-transfer when faults land
#: (100 MB at 120 MB/s is ~0.84 s per read).
BIG_WAVE = [
    [
        TaskDescriptor(
            cpu_instructions=1e6, read_bytes=100_000_000, preferred_node=i
        )
        for i in range(3)
    ]
]


class TestErrorHierarchy:
    def test_simulation_error_is_runtime_error(self):
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(JobFailedError, SimulationError)
        assert issubclass(InvariantViolation, SimulationError)

    def test_fault_plan_error_is_value_error(self):
        # Pre-existing callers catch ValueError for plan validation.
        assert issubclass(FaultPlanError, ValueError)
        assert issubclass(FaultPlanError, SimulationError)

    def test_context_carried_and_rendered(self):
        error = SimulationError("boom", time=1.5, node=2)
        assert error.context == {"time": 1.5, "node": 2}
        assert "time=1.5" in str(error)
        assert "node=2" in str(error)

    def test_scheduler_reexports_job_failed_error(self):
        from repro.stacks import scheduler

        assert scheduler.JobFailedError is JobFailedError


class TestFaultPlanValidation:
    def test_overlapping_crash_windows_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(
                faults=(
                    NodeCrash(node=1, at=1.0, recover_at=5.0),
                    NodeCrash(node=1, at=3.0),
                )
            )

    def test_unrecovered_crash_blocks_later_crash_on_same_node(self):
        # recover_at=None means down forever: any later crash overlaps.
        with pytest.raises(FaultPlanError):
            FaultPlan(
                faults=(
                    NodeCrash(node=0, at=1.0),
                    NodeCrash(node=0, at=9.0),
                )
            )

    def test_sequential_windows_on_same_node_allowed(self):
        plan = FaultPlan(
            faults=(
                NodeCrash(node=1, at=1.0, recover_at=2.0),
                NodeCrash(node=1, at=3.0),
            )
        )
        assert len(plan.faults) == 2

    def test_crash_windows_on_distinct_nodes_independent(self):
        plan = FaultPlan(
            faults=(NodeCrash(node=0, at=1.0), NodeCrash(node=1, at=1.0))
        )
        assert len(plan.faults) == 2

    def test_unknown_node_rejected_at_validate(self):
        plan = FaultPlan.single_crash(node=7, at=1.0)
        with pytest.raises(FaultPlanError):
            plan.validate(5)

    def test_partition_node_refs_validated(self):
        plan = FaultPlan(
            faults=(NetworkPartition(nodes=(1, 9), at=1.0, until=2.0),)
        )
        with pytest.raises(FaultPlanError):
            plan.validate(5)

    def test_validate_returns_self_for_chaining(self):
        plan = FaultPlan.single_crash(node=1, at=1.0)
        assert plan.validate(5) is plan

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(faults=("not a fault",))

    def test_fault_plan_error_catchable_as_value_error(self):
        with pytest.raises(ValueError):
            FaultPlan.single_crash(node=3, at=1.0).validate(2)


class TestAuditorCore:
    def test_fault_free_run_audits_clean(self):
        auditor = audited_run_waves(None, BIG_WAVE)
        assert auditor.clean

    def test_faulted_run_audits_clean(self):
        plan = FaultPlan.single_crash(node=0, at=0.3, recover_at=5.0)
        auditor = audited_run_waves(plan, BIG_WAVE)
        assert auditor.clean, [v.to_dict() for v in auditor.violations]

    def test_clock_monotonicity_violation_recorded(self):
        auditor = InvariantAuditor()
        auditor.observe_time(5.0)
        auditor.observe_time(4.0)
        assert violation_signature(auditor.violations) == "clock-monotonic"

    def test_strict_mode_raises_immediately(self):
        auditor = InvariantAuditor(strict=True)
        auditor.observe_time(5.0)
        with pytest.raises(InvariantViolation):
            auditor.observe_time(4.0)

    def test_raise_if_violated_carries_violations(self):
        auditor = InvariantAuditor()
        auditor.record("task-commit-once", "demo")
        with pytest.raises(InvariantViolation) as excinfo:
            auditor.raise_if_violated()
        assert excinfo.value.violations[0].invariant == "task-commit-once"

    def test_valid_partial_credit_accepted(self):
        auditor = InvariantAuditor()
        auditor.observe_disk_interrupt("disk", 1000, 500, 0.5, 1.0)
        assert auditor.clean

    def test_over_credit_recorded(self):
        auditor = InvariantAuditor()
        auditor.observe_disk_interrupt("disk", 1000, 1000, 0.5, 1.0)
        assert violation_signature(auditor.violations) == "disk-partial-credit"

    def test_negative_credit_recorded(self):
        auditor = InvariantAuditor()
        auditor.observe_disk_interrupt("disk", 1000, -1, 0.5, 1.0)
        assert not auditor.clean

    def test_aborted_run_keeps_leak_checks_but_skips_liveness(self):
        plan = FaultPlan.single_crash(node=0, at=0.2)
        policy = RecoveryPolicy(max_attempts=1, abort_on_node_loss=True)
        auditor = audited_run_waves(plan, BIG_WAVE, policy=policy)
        # The aborting supervisor never triggers; that must not count as
        # a stranded process, and no grants may leak on the way out.
        assert auditor.clean, [v.to_dict() for v in auditor.violations]


class TestInterruptDuringDiskTransfer:
    def test_partial_credit_is_time_proportional(self):
        auditor = InvariantAuditor()
        sim = Simulation(auditor=auditor)
        disk = Disk(sim, bandwidth_mbps=100.0, seek_ms=0.0)
        io = disk.read(10_000_000)  # 0.1 s transfer

        def killer():
            yield sim.timeout(0.05)
            io.interrupt("mid-transfer kill")

        sim.process(killer())
        sim.run()
        # Half the duration elapsed: roughly half the bytes credited,
        # and the auditor saw a physically plausible credit.
        assert disk.bytes_read == pytest.approx(5_000_000, rel=0.01)
        assert disk.inflight == 0
        assert auditor.clean

    def test_mutated_credit_rule_is_flagged(self, monkeypatch):
        monkeypatch.setattr(
            Disk, "_partial_credit", lambda self, nbytes, e, d: nbytes
        )
        auditor = InvariantAuditor()
        sim = Simulation(auditor=auditor)
        disk = Disk(sim, bandwidth_mbps=100.0, seek_ms=0.0)
        io = disk.read(10_000_000)

        def killer():
            yield sim.timeout(0.05)
            io.interrupt("mid-transfer kill")

        sim.process(killer())
        sim.run()
        assert violation_signature(auditor.violations) == "disk-partial-credit"


class TestCampaignGeneration:
    def test_same_seed_same_campaign(self):
        first = generate_campaign(5)
        second = generate_campaign(5)
        assert [(c.workload, c.stack, c.scenario) for c in first] == [
            (c.workload, c.stack, c.scenario) for c in second
        ]

    def test_covers_full_matrix(self):
        cases = generate_campaign(0)
        cells = {(c.workload, c.stack) for c in cases}
        assert cells == {
            (w, s) for w in WORKLOADS for s in STACKS
        }

    def test_scenarios_rotate_across_seeds(self):
        seen = set()
        for seed in range(8):
            seen.update(c.scenario for c in generate_campaign(seed))
        assert seen == set(SCENARIOS)

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            generate_campaign(0, workloads=("teragen",))

    def test_unknown_stack_rejected(self):
        with pytest.raises(KeyError):
            generate_campaign(0, stacks=("Flink",))

    def test_all_scenarios_yield_valid_plans(self):
        for scenario in SCENARIOS:
            for seed in range(6):
                plan = make_plan(scenario, f"{scenario}:{seed}", 5, 2.0)
                plan.validate(5)  # would raise FaultPlanError
                assert plan.faults

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            make_plan("meteor-strike", "x", 5, 1.0)


class TestCampaignExecution:
    SCALE = 0.2

    def test_case_runs_clean_and_deterministic(self):
        case = generate_campaign(
            2, workloads=("wordcount",), stacks=("Hadoop",)
        )[0]
        first = run_case(case, scale=self.SCALE)
        second = run_case(case, scale=self.SCALE)
        assert first.clean, [v.to_dict() for v in first.violations]
        assert first.outcome == second.outcome
        assert first.elapsed == second.elapsed
        assert first.tasks_retried == second.tasks_retried

    def test_mpi_abort_is_not_a_violation(self):
        horizon = baseline_elapsed("wordcount", "MPI", self.SCALE)
        plan = FaultPlan.single_crash(node=1, at=0.4 * horizon)
        result = run_plan("wordcount", "MPI", plan, scale=self.SCALE)
        assert result.outcome == "aborted"
        assert result.clean


class TestMutationCatchAndShrink:
    """The acceptance loop: inject a bug, catch it, shrink, replay."""

    MULTI_FAULT_PLAN = FaultPlan(
        faults=(
            NodeCrash(node=0, at=0.3, recover_at=2.5),
            DiskDegrade(node=1, at=0.1, factor=4.0, until=1.0),
            NetworkPartition(nodes=(2,), at=0.1, until=0.2),
        )
    )

    def test_double_credit_caught_shrunk_and_replayed(self, monkeypatch):
        monkeypatch.setattr(
            Disk, "_partial_credit", lambda self, nbytes, e, d: nbytes
        )

        def signature_of(plan):
            return violation_signature(
                audited_run_waves(plan, BIG_WAVE).violations
            )

        target = signature_of(self.MULTI_FAULT_PLAN)
        assert target == "disk-partial-credit"
        small = shrink_plan(self.MULTI_FAULT_PLAN, signature_of)
        assert len(small.faults) < len(self.MULTI_FAULT_PLAN.faults)
        assert signature_of(small) == target
        # Deterministic replay: the identical violations, twice.
        first = [
            v.to_dict() for v in audited_run_waves(small, BIG_WAVE).violations
        ]
        second = [
            v.to_dict() for v in audited_run_waves(small, BIG_WAVE).violations
        ]
        assert first == second and first

    def test_fixed_build_replays_clean(self, monkeypatch):
        # Under the mutation the shrunken plan reproduces; on the real
        # (fixed) credit rule the same plan audits clean — the developer
        # fix-verification loop.
        monkeypatch.setattr(
            Disk, "_partial_credit", lambda self, nbytes, e, d: nbytes
        )

        def signature_of(plan):
            return violation_signature(
                audited_run_waves(plan, BIG_WAVE).violations
            )

        small = shrink_plan(self.MULTI_FAULT_PLAN, signature_of)
        monkeypatch.undo()
        assert audited_run_waves(small, BIG_WAVE).clean

    def test_chunk_remainder_loss_caught(self, monkeypatch):
        monkeypatch.setattr(
            _WaveScheduler,
            "_chunk_sizes",
            staticmethod(lambda nbytes, n_chunks: (nbytes // n_chunks, 0)),
        )
        # 100000007 bytes over two 64 MiB chunks leaves a remainder the
        # mutation drops; conservation must notice on a fault-free run.
        wave = [[TaskDescriptor(cpu_instructions=1e6, read_bytes=100_000_007)]]
        auditor = audited_run_waves(None, wave)
        assert (
            violation_signature(auditor.violations) == "byte-conservation-disk"
        )

    def test_double_commit_race_would_be_caught(self):
        # Simulate the ledger seeing two commits for one task.
        auditor = InvariantAuditor()

        class _Totals:
            cpu_seconds = 0.0
            disk_bytes = 0
            net_bytes = 0

        class _Cluster:
            telemetry = None
            nodes = ()

            def direct_totals(self, peek=False):
                return _Totals()

            def __len__(self):
                return 1

        auditor.begin_job(_Cluster())
        auditor.begin_wave(
            0, [TaskDescriptor(cpu_instructions=1e6)], instruction_rate=1e9
        )
        auditor.attempt_settled(0, 0, committed=True)
        auditor.attempt_settled(0, 0, committed=True)
        auditor.end_wave(0)
        assert violation_signature(auditor.violations) == "task-commit-once"

    def test_lost_task_caught(self):
        auditor = InvariantAuditor()

        class _Totals:
            cpu_seconds = 0.0
            disk_bytes = 0
            net_bytes = 0

        class _Cluster:
            telemetry = None
            nodes = ()

            def direct_totals(self, peek=False):
                return _Totals()

            def __len__(self):
                return 1

        auditor.begin_job(_Cluster())
        auditor.begin_wave(
            0, [TaskDescriptor(cpu_instructions=1e6)], instruction_rate=1e9
        )
        auditor.end_wave(0)  # nobody ever committed
        assert violation_signature(auditor.violations) == "task-commit-once"


class TestShrinker:
    def test_clean_plan_returned_unchanged(self):
        plan = FaultPlan.single_crash(node=0, at=1.0)
        assert shrink_plan(plan, lambda _plan: None) is plan

    def test_greedy_removal_to_single_fault(self):
        plan = FaultPlan(
            faults=(
                NodeCrash(node=0, at=1.0),
                NodeCrash(node=1, at=2.0),
                NodeCrash(node=2, at=3.0),
            )
        )
        # Signature reproduces iff node 1's crash is present.
        def predicate(candidate):
            hit = any(
                isinstance(f, NodeCrash) and f.node == 1
                for f in candidate.faults
            )
            return "task-commit-once" if hit else None

        small = shrink_plan(plan, predicate)
        assert len(small.faults) == 1
        assert small.faults[0].node == 1

    def test_attribute_simplification_drops_recovery(self):
        plan = FaultPlan(
            faults=(NodeCrash(node=0, at=1.0, recover_at=9.0),)
        )
        small = shrink_plan(plan, lambda _plan: "resource-leak")
        assert small.faults[0].recover_at is None

    def test_budget_bounds_predicate_invocations(self):
        calls = [0]

        def predicate(_plan):
            calls[0] += 1
            return "resource-leak"

        plan = FaultPlan(
            faults=tuple(NodeCrash(node=i, at=1.0) for i in range(5))
        )
        shrink_plan(plan, predicate, max_runs=10)
        assert calls[0] <= 10

    def test_signature_mismatch_not_accepted(self):
        plan = FaultPlan(
            faults=(NodeCrash(node=0, at=1.0), NodeCrash(node=1, at=2.0))
        )
        # Dropping either fault flips the signature: nothing can shrink.
        def predicate(candidate):
            return (
                "task-commit-once"
                if len(candidate.faults) == 2 else "resource-leak"
            )

        assert shrink_plan(plan, predicate).faults == plan.faults


class TestReplayFiles:
    PLAN = FaultPlan(
        faults=(
            NodeCrash(node=0, at=0.5, recover_at=1.5),
            DiskDegrade(node=1, at=0.2, factor=3.5, until=None),
            NetworkPartition(nodes=(2, 3), at=0.4, until=0.9),
        ),
        seed=42,
    )

    def test_plan_round_trips_through_dict(self):
        assert plan_from_dict(plan_to_dict(self.PLAN)) == self.PLAN

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "replay.json"
        save_replay(
            str(path),
            replay_to_dict(
                "wordcount", "Hadoop", self.PLAN, 0.2,
                scenario="crash-storm", seed=3,
            ),
        )
        data = load_replay(str(path))
        assert data["workload"] == "wordcount"
        assert data["stack"] == "Hadoop"
        assert data["plan"] == self.PLAN

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "replay.json"
        payload = replay_to_dict("wordcount", "Hadoop", self.PLAN, 0.2)
        payload["version"] = 99
        save_replay(str(path), payload)
        with pytest.raises(FaultPlanError):
            load_replay(str(path))

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            plan_from_dict({"faults": [{"kind": "alien"}]})


class TestChaosCli:
    SCALE = "0.2"

    def test_clean_campaign_exits_zero(self, capsys):
        from repro.cli import main

        assert main([
            "--scale", self.SCALE, "chaos", "--seeds", "1",
            "--workloads", "wordcount", "--stacks", "Hadoop",
        ]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_nonzero_and_writes_artifact(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        # Halve every task's I/O while still committing the full demand:
        # the loss dwarfs any fault-induced waste, so byte conservation
        # trips, the campaign fails and pins a minimized replay file.
        monkeypatch.setattr(
            _WaveScheduler,
            "_chunk_sizes",
            staticmethod(lambda nbytes, n_chunks: (nbytes // (2 * n_chunks), 0)),
        )
        artifact_dir = tmp_path / "artifacts"
        code = main([
            "--scale", self.SCALE, "chaos", "--seeds", "1",
            "--workloads", "wordcount", "--stacks", "Hadoop",
            "--artifact-dir", str(artifact_dir),
        ])
        assert code == 1
        artifacts = list(artifact_dir.glob("chaos-*.json"))
        assert len(artifacts) == 1
        # The pinned replay still reproduces on the broken build ...
        assert main(["chaos", "--replay", str(artifacts[0])]) == 1
        monkeypatch.undo()
        capsys.readouterr()
        # ... and runs clean once the accounting bug is fixed.
        assert main(["chaos", "--replay", str(artifacts[0])]) == 0
        assert "no longer reproduces" in capsys.readouterr().out

    def test_replay_json_output(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path = tmp_path / "replay.json"
        save_replay(
            str(path),
            replay_to_dict(
                "wordcount", "Hadoop",
                FaultPlan.single_crash(node=1, at=0.001), float(self.SCALE),
            ),
        )
        assert main(["chaos", "--replay", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
