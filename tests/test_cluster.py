"""Tests for disks, NICs, nodes, the cluster and the DFS."""

import pytest

from repro.cluster import (
    Cluster,
    DistributedFileSystem,
    Nic,
    Node,
    NodeSpec,
    Simulation,
)
from repro.cluster.disk import Disk


class TestDisk:
    def test_transfer_time(self):
        sim = Simulation()
        disk = Disk(sim, bandwidth_mbps=100.0, seek_ms=0.0)
        done = []

        def reader():
            yield disk.read(100 * 1_000_000)
            done.append(sim.now)

        sim.process(reader())
        sim.run()
        assert done[0] == pytest.approx(1.0)

    def test_seek_added_for_random_io(self):
        sim = Simulation()
        disk = Disk(sim, bandwidth_mbps=100.0, seek_ms=10.0)
        times = []

        def io(sequential):
            yield disk.read(1_000_000, sequential=sequential)
            times.append(sim.now)

        sim.process(io(True))
        sim.run()
        sequential_time = times[-1]
        sim2 = Simulation()
        disk2 = Disk(sim2, bandwidth_mbps=100.0, seek_ms=10.0)
        times2 = []

        def io2():
            yield disk2.read(1_000_000, sequential=False)
            times2.append(sim2.now)

        sim2.process(io2())
        sim2.run()
        assert times2[-1] > sequential_time

    def test_weighted_io_time(self):
        sim = Simulation()
        disk = Disk(sim, bandwidth_mbps=100.0, seek_ms=0.0)

        def two_readers():
            a = disk.read(100 * 1_000_000)
            b = disk.read(100 * 1_000_000)
            yield sim.all_of([a, b])

        sim.process(two_readers())
        sim.run()
        # Two requests overlap in the queue: weighted time > wall time.
        assert disk.weighted_io_time() > 2.0 - 1e-9
        assert disk.bytes_read == 200 * 1_000_000

    def test_byte_accounting(self):
        sim = Simulation()
        disk = Disk(sim)

        def writer():
            yield disk.write(1234)

        sim.process(writer())
        sim.run()
        assert disk.bytes_written == 1234


class TestNic:
    def test_bandwidth(self):
        sim = Simulation()
        nic = Nic(sim, "n0", bandwidth_gbps=1.0)
        done = []

        def sender():
            yield nic.send(125_000_000)  # 1 Gbit
            done.append(sim.now)

        sim.process(sender())
        sim.run()
        assert done[0] == pytest.approx(1.0)


class TestNode:
    def test_compute_uses_cores(self):
        sim = Simulation()
        node = Node(sim, "n", NodeSpec(cores=2))
        done = []

        def task():
            yield node.compute(1.0)
            done.append(sim.now)

        for _ in range(4):
            sim.process(task())
        sim.run()
        # 4 single-core seconds on 2 cores -> finishes at t=2.
        assert max(done) == pytest.approx(2.0)
        assert node.cpu_utilization(2.0) == pytest.approx(1.0)

    def test_io_wait_accounting(self):
        sim = Simulation()
        node = Node(sim, "n", NodeSpec(cores=1, disk_bandwidth_mbps=100.0))

        def task():
            yield node.blocking_read(100 * 1_000_000)

        sim.process(task())
        sim.run()
        assert node.io_block_time > 0.9

    def test_memory_guard(self):
        sim = Simulation()
        node = Node(sim, "n", NodeSpec(memory_gb=4.0))
        node.allocate_memory(3.0)
        with pytest.raises(MemoryError):
            node.allocate_memory(2.0)
        node.free_memory(3.0)
        node.allocate_memory(2.0)


class TestCluster:
    def test_default_is_five_nodes(self):
        assert len(Cluster()) == 5

    def test_metrics_empty_at_start(self):
        cluster = Cluster()
        metrics = cluster.metrics()
        assert metrics.cpu_utilization == 0.0

    def test_node_wraps(self):
        cluster = Cluster(n_nodes=3)
        assert cluster.node(4) is cluster.node(1)


class TestDistributedFileSystem:
    def test_block_count(self):
        cluster = Cluster()
        dfs = DistributedFileSystem(cluster, block_bytes=64 * 1024 * 1024)
        handle = dfs.create("/f", 200 * 1024 * 1024)
        assert handle.n_blocks == 4  # 64+64+64+8

    def test_replication(self):
        cluster = Cluster(n_nodes=5)
        dfs = DistributedFileSystem(cluster, replication=3)
        handle = dfs.create("/f", 64 * 1024 * 1024)
        assert len(handle.blocks[0].replicas) == 3

    def test_duplicate_create_rejected(self):
        cluster = Cluster()
        dfs = DistributedFileSystem(cluster)
        dfs.create("/f", 10)
        with pytest.raises(FileExistsError):
            dfs.create("/f", 10)

    def test_lookup_missing(self):
        dfs = DistributedFileSystem(Cluster())
        with pytest.raises(FileNotFoundError):
            dfs.lookup("/missing")

    def test_local_read_no_network(self):
        cluster = Cluster(n_nodes=5)
        dfs = DistributedFileSystem(cluster)
        handle = dfs.create("/f", 64 * 1024 * 1024)
        reader = handle.blocks[0].replicas[0]

        def read():
            yield dfs.read_block(handle, 0, reader)

        cluster.sim.process(read())
        cluster.run()
        assert cluster.node(reader).disk.bytes_read > 0
        assert all(node.nic.total_bytes == 0 for node in cluster.nodes)

    def test_remote_read_uses_network(self):
        cluster = Cluster(n_nodes=5)
        dfs = DistributedFileSystem(cluster, replication=1)
        handle = dfs.create("/f", 64 * 1024 * 1024)
        holder = handle.blocks[0].replicas[0]
        remote = (holder + 2) % 5

        def read():
            yield dfs.read_block(handle, 0, remote)

        cluster.sim.process(read())
        cluster.run()
        assert cluster.node(holder).nic.bytes_sent > 0

    def test_write_replicates(self):
        cluster = Cluster(n_nodes=5)
        dfs = DistributedFileSystem(cluster, replication=2)

        def write():
            yield dfs.write_file("/out", 64 * 1024 * 1024, writer_node=0)

        cluster.sim.process(write())
        cluster.run()
        writers = [n for n in cluster.nodes if n.disk.bytes_written > 0]
        assert len(writers) == 2

    def test_blocks_on_node(self):
        cluster = Cluster(n_nodes=5)
        dfs = DistributedFileSystem(cluster, replication=3)
        handle = dfs.create("/f", 5 * 64 * 1024 * 1024)
        for node_index in range(5):
            blocks = dfs.blocks_on_node(handle, node_index)
            assert all(node_index in b.replicas for b in blocks)
