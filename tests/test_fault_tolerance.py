"""Fault injection and fault-tolerant scheduling tests.

The load-bearing guarantee: with no fault plan the fault-tolerant
scheduler is *bit-identical* to plain wave execution, so fault tolerance
never perturbs the paper's characterization baseline.  On top of that:
seeded plans replay deterministically, Hadoop/Spark policies recover
from a node crash while the MPI policy aborts, and speculation's first
finisher wins.
"""

import dataclasses

import pytest

from repro.cluster import Cluster
from repro.cluster.faults import (
    DiskDegrade,
    FaultInjector,
    FaultPlan,
    NetworkPartition,
    NodeCrash,
)
from repro.stacks.scheduler import (
    HADOOP_POLICY,
    MPI_POLICY,
    JobFailedError,
    RecoveryPolicy,
    TaskDescriptor,
    policy_for,
    run_waves,
)
from repro.workloads.kernels import (
    hadoop_wordcount,
    mpi_wordcount,
    spark_wordcount,
)

CHUNK = 64 * 1024 * 1024


def mixed_waves():
    """Two waves exercising reads, compute, writes and shuffle."""
    wave_one = [
        TaskDescriptor(
            cpu_instructions=1.5e9,
            read_bytes=150_000_000 + i,  # not chunk-aligned on purpose
            write_bytes=40_000_000 + i,
            net_bytes=5_000_000,
        )
        for i in range(8)
    ]
    wave_two = [
        TaskDescriptor(
            cpu_instructions=8e8,
            read_bytes=30_000_000,
            write_bytes=10_000_000,
            preferred_node=i,
        )
        for i in range(5)
    ]
    return [wave_one, wave_two]


def legacy_run_waves(cluster, waves, instruction_rate, io_chunk_bytes=CHUNK):
    """The pre-fault-tolerance wave loop (byte-remainder fix applied),
    kept inline as the bit-identity reference."""
    sim = cluster.sim
    n_nodes = len(cluster)

    def task_process(task, node_index):
        node = cluster.node(node_index)
        peer = cluster.node((node_index + 1) % n_nodes)
        total_io = task.read_bytes + task.write_bytes
        cpu_seconds = task.cpu_instructions / instruction_rate
        n_chunks = max(1, (total_io + io_chunk_bytes - 1) // io_chunk_bytes)
        cpu_per_chunk = cpu_seconds / n_chunks
        read_per_chunk, read_remainder = divmod(task.read_bytes, n_chunks)
        write_per_chunk, write_remainder = divmod(task.write_bytes, n_chunks)
        for chunk in range(n_chunks):
            last = chunk == n_chunks - 1
            nread = read_per_chunk + (read_remainder if last else 0)
            if nread:
                yield node.blocking_read(nread)
            if cpu_per_chunk > 0:
                yield node.compute(cpu_per_chunk)
            nwrite = write_per_chunk + (write_remainder if last else 0)
            if nwrite:
                yield node.blocking_write(nwrite, sequential=not task.random_writes)
        if task.net_bytes and n_nodes > 1:
            yield cluster.network.transfer(node.name, peer.name, task.net_bytes)

    next_node = 0
    for wave in waves:
        if not wave:
            continue
        processes = []
        for task in wave:
            if task.preferred_node is not None:
                node_index = task.preferred_node % n_nodes
            else:
                node_index = next_node
                next_node = (next_node + 1) % n_nodes
            processes.append(sim.process(task_process(task, node_index)))
        gate = sim.all_of(processes)
        sim.run()
        assert gate.triggered
    return cluster.metrics()


class TestFaultFreeBitIdentity:
    def test_identical_to_legacy_scheduler(self):
        legacy = legacy_run_waves(Cluster(), mixed_waves(), 2e9)
        current = run_waves(Cluster(), mixed_waves(), 2e9)
        assert current == legacy  # full dataclass equality, every field

    def test_empty_plan_identical_to_no_plan(self):
        bare = run_waves(Cluster(), mixed_waves(), 2e9)
        empty = run_waves(
            Cluster(), mixed_waves(), 2e9,
            faults=FaultPlan.none(), policy=HADOOP_POLICY,
        )
        assert bare == empty

    def test_fault_free_recovery_fields_stay_default(self):
        metrics = run_waves(Cluster(), mixed_waves(), 2e9)
        assert metrics.tasks_retried == 0
        assert metrics.speculative_launches == 0
        assert metrics.wasted_work_ratio == 0.0
        assert metrics.makespan_inflation == 1.0
        assert metrics.faults_injected == 0


class TestByteAccounting:
    def test_io_remainder_bytes_not_lost(self):
        # 2 chunks with an odd byte: integer division used to drop it.
        read = CHUNK + 3
        write = CHUNK // 2 + 1
        cluster = Cluster(n_nodes=1)
        run_waves(
            cluster,
            [[TaskDescriptor(cpu_instructions=1e9, read_bytes=read,
                             write_bytes=write)]],
            2e9,
        )
        disk = cluster.node(0).disk
        assert disk.bytes_read == read
        assert disk.bytes_written == write

    def test_tiny_io_smaller_than_chunk_count_survives(self):
        # read_bytes < n_chunks used to floor to zero bytes per chunk.
        cluster = Cluster(n_nodes=1)
        run_waves(
            cluster,
            [[TaskDescriptor(cpu_instructions=1e9, read_bytes=1,
                             write_bytes=2 * CHUNK)]],
            2e9,
        )
        assert cluster.node(0).disk.bytes_read == 1


class TestFaultPlans:
    def test_seeded_plan_reproducible(self):
        first = FaultPlan.seeded(11, horizon=2.0, crashes=1,
                                 degraded_disks=1, partitions=1)
        second = FaultPlan.seeded(11, horizon=2.0, crashes=1,
                                  degraded_disks=1, partitions=1)
        assert first == second
        assert len(first.faults) == 3

    def test_different_seeds_differ(self):
        assert FaultPlan.seeded(1, horizon=2.0) != FaultPlan.seeded(2, horizon=2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeCrash(node=0, at=1.0, recover_at=0.5)
        with pytest.raises(ValueError):
            DiskDegrade(node=0, at=0.0, factor=0.5)
        with pytest.raises(ValueError):
            NetworkPartition(nodes=(), at=0.0, until=1.0)

    def test_injector_installs_once(self):
        cluster = Cluster()
        injector = FaultInjector(cluster, FaultPlan.single_crash())
        injector.install()
        with pytest.raises(RuntimeError):
            injector.install()


def crash_policy(**overrides) -> RecoveryPolicy:
    """A Hadoop-style policy with clocks scaled to millisecond jobs."""
    base = HADOOP_POLICY.scaled(0.0001)
    return dataclasses.replace(base, **overrides) if overrides else base


class TestRecovery:
    def test_single_crash_recovers_with_retries(self):
        baseline = run_waves(Cluster(), mixed_waves(), 2e9)
        plan = FaultPlan.single_crash(node=1, at=0.4 * baseline.elapsed)
        faulty = run_waves(
            Cluster(), mixed_waves(), 2e9, faults=plan, policy=crash_policy()
        )
        assert faulty.tasks_retried > 0
        assert faulty.elapsed > baseline.elapsed
        assert 0.0 < faulty.wasted_work_ratio < 1.0
        assert faulty.faults_injected == 1

    def test_same_plan_reproduces_identical_metrics(self):
        plan = FaultPlan.seeded(7, horizon=1.0)
        first = run_waves(
            Cluster(), mixed_waves(), 2e9, faults=plan, policy=crash_policy()
        )
        second = run_waves(
            Cluster(), mixed_waves(), 2e9, faults=plan, policy=crash_policy()
        )
        assert first == second

    def test_retries_avoid_the_dead_node(self):
        baseline = run_waves(Cluster(), mixed_waves(), 2e9)
        plan = FaultPlan.single_crash(node=2, at=0.3 * baseline.elapsed)
        cluster = Cluster()
        run_waves(cluster, mixed_waves(), 2e9, faults=plan,
                  policy=crash_policy())
        # The dead node did no work after the crash: its core busy time
        # is strictly below every survivor's.
        dead_cpu = cluster.node(2).cpu_time
        survivor_cpu = [
            cluster.node(i).cpu_time for i in range(5) if i != 2
        ]
        assert dead_cpu < min(survivor_cpu)

    def test_max_attempts_exhaustion_fails_job(self):
        baseline = run_waves(Cluster(), mixed_waves(), 2e9)
        plan = FaultPlan.single_crash(node=1, at=0.4 * baseline.elapsed)
        with pytest.raises(JobFailedError, match="attempts"):
            run_waves(
                Cluster(), mixed_waves(), 2e9, faults=plan,
                policy=crash_policy(max_attempts=1, speculation=False),
            )

    def test_mpi_policy_aborts_whole_job(self):
        baseline = run_waves(Cluster(), mixed_waves(), 2e9)
        plan = FaultPlan.single_crash(node=1, at=0.4 * baseline.elapsed)
        with pytest.raises(JobFailedError, match="aborts the whole job"):
            run_waves(
                Cluster(), mixed_waves(), 2e9, faults=plan,
                policy=MPI_POLICY.scaled(0.0001),
            )

    def test_no_surviving_nodes_fails_job(self):
        baseline = run_waves(
            Cluster(n_nodes=2),
            [[TaskDescriptor(cpu_instructions=2e9, read_bytes=100_000_000)
              for _ in range(4)]],
            2e9,
        )
        at = 0.3 * baseline.elapsed
        plan = FaultPlan(faults=(
            NodeCrash(node=0, at=at), NodeCrash(node=1, at=at),
        ))
        with pytest.raises(JobFailedError):
            run_waves(
                Cluster(n_nodes=2),
                [[TaskDescriptor(cpu_instructions=2e9, read_bytes=100_000_000)
                  for _ in range(4)]],
                2e9, faults=plan, policy=crash_policy(),
            )

    def test_node_recovery_rejoins_scheduling(self):
        baseline = run_waves(Cluster(), mixed_waves(), 2e9)
        plan = FaultPlan.single_crash(
            node=1, at=0.2 * baseline.elapsed,
            recover_at=0.5 * baseline.elapsed,
        )
        metrics = run_waves(
            Cluster(), mixed_waves(), 2e9, faults=plan, policy=crash_policy()
        )
        assert metrics.tasks_retried > 0
        assert metrics.elapsed > baseline.elapsed

    def test_stranded_wave_raises_runtime_error(self, monkeypatch):
        # If the event queue drains without the wave gate triggering,
        # the scheduler must name the lost tasks, not assert.
        cluster = Cluster()
        monkeypatch.setattr(
            cluster.sim, "run", lambda *args, **kwargs: cluster.sim.now
        )
        with pytest.raises(RuntimeError, match="tasks \\[0, 1\\]"):
            run_waves(
                cluster,
                [[TaskDescriptor(cpu_instructions=1e9),
                  TaskDescriptor(cpu_instructions=1e9)]],
                2e9,
            )


class TestSpeculation:
    def test_degraded_disk_straggler_gets_duplicate(self):
        # All tasks equal; one node's disk becomes 50x slower early on.
        # The straggling task exceeds the wave median and a duplicate on
        # a healthy node finishes first.
        wave = [
            TaskDescriptor(cpu_instructions=5e8, read_bytes=120_000_000,
                           preferred_node=i)
            for i in range(5)
        ]
        baseline = run_waves(Cluster(), [list(wave)], 2e9)
        plan = FaultPlan(faults=(
            DiskDegrade(node=3, at=0.05 * baseline.elapsed, factor=50.0),
        ))
        policy = dataclasses.replace(
            crash_policy(),
            heartbeat_interval=0.02 * baseline.elapsed,
            slowdown_threshold=1.3,
        )
        metrics = run_waves(
            Cluster(), [list(wave)], 2e9, faults=plan, policy=policy
        )
        assert metrics.speculative_launches >= 1
        assert metrics.speculative_wins >= 1
        assert metrics.wasted_work_ratio > 0.0
        # The duplicate rescues the wave from the 50x-degraded disk.
        assert metrics.elapsed < 10 * baseline.elapsed


class TestStackContrast:
    """The §4.1 trio under one crash: deep stacks recover, MPI dies."""

    SCALE = 0.25

    def test_hadoop_and_spark_recover_where_mpi_aborts(self):
        outcomes = {}
        for name, runner in (
            ("Hadoop", hadoop_wordcount),
            ("Spark", spark_wordcount),
            ("MPI", mpi_wordcount),
        ):
            base = runner(self.SCALE, cluster=Cluster())
            plan = FaultPlan.seeded(7, horizon=base.system.elapsed)
            policy = policy_for(name).scaled(base.system.elapsed / 100.0)
            try:
                faulty = runner(
                    self.SCALE, cluster=Cluster(),
                    faults=plan, recovery=policy,
                )
                outcomes[name] = (faulty.system, base.system)
            except JobFailedError:
                outcomes[name] = None
        for stack in ("Hadoop", "Spark"):
            faulty, base = outcomes[stack]
            assert faulty.tasks_retried > 0
            assert faulty.elapsed > base.elapsed
        assert outcomes["MPI"] is None

    def test_policy_catalog(self):
        assert policy_for("MPI").abort_on_node_loss
        assert policy_for("Impala").abort_on_node_loss
        assert policy_for("Hadoop").speculation
        assert policy_for("Hive") == policy_for("Hadoop")
        assert policy_for("Shark") == policy_for("Spark")
        assert not policy_for("HBase").abort_on_node_loss
        assert not policy_for("unknown-stack").abort_on_node_loss
