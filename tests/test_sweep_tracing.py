"""Cross-process sweep tracing: span files, merge, flows, bit-identity.

Covers the observability tentpole's first leg: workers and the
supervisor write per-process ``*.spans.jsonl`` files which merge into
one Chrome/Perfetto trace with per-worker lanes, and a killed attempt
links to its retry on another worker via a flow event.  The standing
invariant from the executor PRs — observed runs are bit-identical to
unobserved ones — is asserted directly.
"""

import json
import os

import pytest

from repro.errors import TraceMergeError
from repro.exec import (
    SpanWriter,
    SweepTracer,
    merge_results,
    merge_sweep_trace,
    read_span_records,
    worker_lane,
)
from repro.obs import sweep_records_to_chrome

from tests.test_exec_supervisor import fast_executor, make_cells


def run_traced(tmp_path, cells, jobs, **overrides):
    trace_dir = tmp_path / f"trace-j{jobs}"
    tracer = SweepTracer(str(trace_dir))
    executor = fast_executor(jobs, tracer=tracer, **overrides)
    outcome = executor.run(cells)
    tracer.close()
    return outcome, str(trace_dir)


class TestSpanWriter:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "w.spans.jsonl"
        writer = SpanWriter(str(path))
        writer.span("lane-a", "cell-1", "cell", 10.0, 12.5, cell_id="cell-1")
        writer.instant("lane-a", "retry", "retry", 13.0, attempt=2)
        writer.close()
        records = read_span_records(str(tmp_path))
        assert [r["kind"] for r in records] == ["span", "instant"]
        span = records[0]
        assert span["lane"] == "lane-a"
        assert span["t0"] == 10.0 and span["t1"] == 12.5
        assert span["args"]["cell_id"] == "cell-1"
        assert records[1]["t"] == 13.0

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "w.spans.jsonl"
        writer = SpanWriter(str(path))
        writer.span("lane-a", "ok", "cell", 1.0, 2.0)
        writer.close()
        with open(path, "a") as handle:
            handle.write('{"kind": "span", "truncated')
        records = read_span_records(str(tmp_path))
        assert len(records) == 1

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(TraceMergeError):
            read_span_records(str(tmp_path / "nope"))

    def test_worker_lane_embeds_pid(self):
        assert worker_lane(4242, 1) == "worker-4242-1"


class TestTracedSweep:
    def test_parallel_sweep_writes_worker_span_files(self, tmp_path):
        cells = make_cells("ok_cell", count=4)
        outcome, trace_dir = run_traced(tmp_path, cells, jobs=2)
        assert outcome.complete
        files = sorted(os.listdir(trace_dir))
        assert any(f.startswith("supervisor-") for f in files)
        assert sum(f.startswith("worker-") for f in files) >= 2
        records = read_span_records(trace_dir)
        cats = {r["cat"] for r in records}
        assert {"sweep", "boot", "queue", "cell"} <= cats
        cell_spans = [r for r in records if r["cat"] == "cell"]
        assert {s["args"]["cell_id"] for s in cell_spans} == {
            c.cell_id for c in cells
        }

    def test_serial_sweep_traces_on_supervisor_lane(self, tmp_path):
        cells = make_cells("ok_cell", count=2)
        outcome, trace_dir = run_traced(tmp_path, cells, jobs=1)
        assert outcome.complete
        records = read_span_records(trace_dir)
        lanes = {r["lane"] for r in records}
        assert len(lanes) == 1 and next(iter(lanes)).startswith("supervisor-")

    def test_traced_run_bit_identical_to_untraced(self, tmp_path):
        cells = make_cells("ok_cell", count=4)
        plain = fast_executor(2).run(cells)
        traced, _ = run_traced(tmp_path, cells, jobs=2)

        def key(outcome):
            merged = merge_results(cells, outcome.results)
            return json.dumps(merged, sort_keys=True)

        assert key(plain) == key(traced)

    def test_sigkill_retry_links_across_worker_lanes(self, tmp_path):
        cells = make_cells("sigkill_once_cell", count=2, tmp_path=tmp_path)
        outcome, trace_dir = run_traced(tmp_path, cells, jobs=2)
        assert outcome.complete
        records = read_span_records(trace_dir)
        killed = [
            r for r in records
            if r["cat"] == "cell" and r["args"].get("status") == "killed"
        ]
        assert killed, "supervisor should write the killed attempt's span"
        trace = sweep_records_to_chrome(records)
        flows = [e for e in trace["traceEvents"] if e["ph"] in ("s", "f")]
        assert trace["otherData"]["flow_links"] >= 1
        assert flows, "a retried cell must produce a flow link"
        # At least one flow crosses lanes: the killed attempt's lane
        # (dead worker) differs from the retry's (replacement worker).
        by_id = {}
        for event in flows:
            by_id.setdefault(event["id"], {})[event["ph"]] = event["pid"]
        assert any(
            ends.get("s") != ends.get("f")
            for ends in by_id.values()
            if {"s", "f"} <= set(ends)
        )


class TestChromeExport:
    def test_merged_trace_structural_schema(self, tmp_path):
        cells = make_cells("flaky_cell", count=3, tmp_path=tmp_path)
        _, trace_dir = run_traced(tmp_path, cells, jobs=2)
        out_path = tmp_path / "trace.json"
        n_events, n_flows = merge_sweep_trace(trace_dir, str(out_path))
        with open(out_path) as handle:
            trace = json.load(handle)  # valid JSON end to end
        events = trace["traceEvents"]
        assert len(events) == n_events
        assert trace["otherData"]["flow_links"] == n_flows

        meta = [e for e in events if e["ph"] == "M"]
        body = [e for e in events if e["ph"] != "M"]
        # Metadata first, then the body sorted by timestamp.
        assert events[: len(meta)] == meta
        stamps = [e["ts"] for e in body]
        assert stamps == sorted(stamps)
        assert body and min(stamps) == 0.0  # rebased to first event

        for event in events:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        # Every flow id has both ends.
        by_id = {}
        for event in body:
            if event["ph"] in ("s", "f"):
                by_id.setdefault(event["id"], set()).add(event["ph"])
        for ends in by_id.values():
            assert ends == {"s", "f"}
        # One Chrome pid per lane, supervisor lane first.
        names = [
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        ]
        assert names[0].startswith("supervisor-")
        assert len(names) == trace["otherData"]["lanes"]

    def test_lane_metadata_uses_embedded_os_pid(self):
        records = [
            {
                "kind": "span", "lane": "worker-777-0", "pid": 1,
                "name": "q", "cat": "queue", "t0": 0.0, "t1": 1.0,
                "args": {"cell_id": "c"},
            },
        ]
        trace = sweep_records_to_chrome(records)
        names = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("name") == "process_name"
        ]
        assert names == ["worker-777-0 (os pid 777)"]

    def test_merge_into_missing_dir_raises(self, tmp_path):
        with pytest.raises(TraceMergeError):
            merge_sweep_trace(str(tmp_path / "absent"), str(tmp_path / "t"))


class TestTraceTelemetry:
    def test_span_writer_counts_writes(self, tmp_path):
        writer = SpanWriter(str(tmp_path / "t" / "w.spans.jsonl"))
        writer.span("lane", "cell", "exec", 0.0, 1.0)
        writer.instant("lane", "mark", "exec", 0.5)
        writer.close()
        telemetry = writer.telemetry()
        assert telemetry["trace_writes"] == 2.0
        assert telemetry["trace_writer_errors"] == 0.0

    def test_dead_sink_counts_drops_and_warns_once(self, tmp_path, capsys):
        target = tmp_path / "w.spans.jsonl"
        target.mkdir()
        writer = SpanWriter(str(target))
        writer.span("lane", "a", "exec", 0.0, 1.0)
        writer.span("lane", "b", "exec", 1.0, 2.0)
        writer.close()
        telemetry = writer.telemetry()
        assert telemetry["trace_writer_errors"] == 1.0
        assert telemetry["trace_dropped_events"] == 2.0
        assert capsys.readouterr().err.count("can no longer write") == 1

    def test_tracer_telemetry_passes_through(self, tmp_path):
        tracer = SweepTracer(str(tmp_path / "trace"))
        tracer.span("merge", "exec", 0.0, 1.0)
        tracer.close()
        assert tracer.telemetry()["trace_writes"] == 1.0


class TestMergeDurability:
    def test_merge_leaves_no_tmp_litter(self, tmp_path):
        cells = make_cells("ok_cell", count=2)
        trace_dir = str(tmp_path / "trace")
        tracer = SweepTracer(trace_dir)
        fast_executor(2, tracer=tracer).run(cells)
        tracer.close()
        out = str(tmp_path / "trace.json")
        merge_sweep_trace(trace_dir, out)
        assert json.load(open(out))["traceEvents"]
        litter = [n for n in os.listdir(tmp_path) if ".tmp." in n]
        assert litter == []
