"""Crash-safety of sweep checkpoints and the hardened run registry."""

import json
import os

import pytest

from repro.errors import CheckpointError
from repro.exec.cells import CellResult
from repro.exec.checkpoint import SweepCheckpoint, sweep_id
from repro.obs.registry import (
    RunRegistry,
    atomic_write_json,
    quarantine_corrupt,
)


def result_for(cell_id, value=1.0, status="ok"):
    return CellResult(
        cell_id=cell_id, status=status, metrics={"value": value},
        provenance_hash="deadbeefdeadbeef",
    )


class TestSweepCheckpoint:
    def test_journal_and_snapshot_round_trip(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0",
                                     snapshot_every=2)
        checkpoint.initialise(config_hash="h", seed=0,
                              config={"k": 1}, n_cells=3)
        for i in range(3):
            checkpoint.record(result_for(f"c{i}", value=float(i)))
        checkpoint.close()

        loaded = SweepCheckpoint(str(tmp_path), "s-h-s0").load()
        assert sorted(loaded) == ["c0", "c1", "c2"]
        assert loaded["c1"].metrics["value"] == 1.0

    def test_torn_journal_tail_is_dropped(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0")
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=2)
        checkpoint.record(result_for("c0"))
        with open(checkpoint.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"cell_id": "c1", "status": "o')  # crash mid-write
        loaded = SweepCheckpoint(str(tmp_path), "s-h-s0").load()
        assert sorted(loaded) == ["c0"]

    def test_corrupt_snapshot_falls_back_to_journal(self, tmp_path, capsys):
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0",
                                     snapshot_every=1)
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=1)
        checkpoint.record(result_for("c0"))
        with open(checkpoint.snapshot_path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        fresh = SweepCheckpoint(str(tmp_path), "s-h-s0")
        assert sorted(fresh.load()) == ["c0"]
        assert os.path.exists(checkpoint.snapshot_path + ".corrupt")

    def test_resume_under_different_config_refused(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0")
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=1)
        other = SweepCheckpoint(str(tmp_path), "s-h-s0")
        with pytest.raises(CheckpointError):
            other.initialise(config_hash="DIFFERENT", seed=0, config={},
                             n_cells=1)

    def test_later_journal_entry_wins(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0")
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=1)
        checkpoint.record(result_for("c0", status="quarantined"))
        checkpoint.record(result_for("c0", value=5.0, status="ok"))
        loaded = SweepCheckpoint(str(tmp_path), "s-h-s0").load()
        assert loaded["c0"].status == "ok"
        assert loaded["c0"].metrics["value"] == 5.0

    def test_sweep_id_is_config_and_seed_keyed(self):
        assert sweep_id("sweep", "abc123", 7) == "sweep-abc123-s7"


class TestAtomicWrites:
    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        path = str(tmp_path / "x.json")
        atomic_write_json(path, {"a": 1})
        atomic_write_json(path, {"a": 2})
        assert json.load(open(path)) == {"a": 2}
        assert os.listdir(tmp_path) == ["x.json"]

    def test_quarantine_corrupt_moves_aside(self, tmp_path, capsys):
        path = str(tmp_path / "bad.json")
        open(path, "w").write("{ nope")
        moved = quarantine_corrupt(path)
        assert moved.endswith(".corrupt")
        assert not os.path.exists(path)
        assert "quarantined" in capsys.readouterr().err


class TestRegistryHardening:
    def test_corrupt_record_quarantined_not_fatal(self, tmp_path, capsys):
        registry = RunRegistry(str(tmp_path))
        from repro.obs.registry import RunRecord, build_provenance

        record = RunRecord(
            experiment="fig3", kind="experiment",
            metrics={"m": 1.0},
            provenance=build_provenance(
                experiment="fig3", seed=0, scale=0.3, platforms=["X"]
            ),
        )
        registry.save(record)
        # A truncated record (pre-atomic writer killed mid-write).
        bad = os.path.join(str(tmp_path), "zz-truncated.json")
        open(bad, "w").write('{"schema_version": 1, "experiment": "fi')

        records = registry.records()
        assert [r.experiment for r in records] == ["fig3"]
        assert not os.path.exists(bad)
        assert os.path.exists(bad + ".corrupt")
        assert "quarantined" in capsys.readouterr().err
        # The quarantined file is not rescanned next time.
        assert len(registry.records()) == 1

    def test_save_is_atomic_no_partials_visible(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        from repro.obs.registry import RunRecord, build_provenance

        record = RunRecord(
            experiment="fig3", kind="experiment", metrics={"m": 1.0},
            provenance=build_provenance(
                experiment="fig3", seed=0, scale=0.3, platforms=["X"]
            ),
        )
        path = registry.save(record)
        assert os.path.basename(path) in os.listdir(tmp_path)
        assert not [n for n in os.listdir(tmp_path) if ".tmp." in n]


class TestDoubleTornRecovery:
    def test_torn_snapshot_and_torn_journal_together(self, tmp_path, capsys):
        # Both recovery sources damaged in the same sweep dir: the
        # snapshot torn mid-rewrite, the journal torn mid-append.
        # load() must still reconstruct every intact cell.
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0",
                                     snapshot_every=2)
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=4)
        for i in range(4):
            checkpoint.record(result_for(f"c{i}", value=float(i)))
        checkpoint.close()

        body = open(checkpoint.snapshot_path).read()
        open(checkpoint.snapshot_path, "w").write(body[: len(body) // 3])
        with open(checkpoint.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"cell_id": "c4", "status": "o')  # torn append

        loaded = SweepCheckpoint(str(tmp_path), "s-h-s0").load()
        assert sorted(loaded) == ["c0", "c1", "c2", "c3"]
        assert loaded["c3"].metrics["value"] == 3.0
        # The torn snapshot is quarantined as evidence, not deleted.
        assert os.path.exists(checkpoint.snapshot_path + ".corrupt")
        capsys.readouterr()

    def test_resume_appends_cleanly_after_torn_tail(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0")
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=3)
        checkpoint.record(result_for("c0"))
        checkpoint.close()
        with open(checkpoint.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"cell_id": "c1", "st')  # crash mid-append

        resumed = SweepCheckpoint(str(tmp_path), "s-h-s0")
        assert sorted(resumed.load()) == ["c0"]
        resumed.record(result_for("c2"))  # JournalWriter isolates the tear
        resumed.close()
        assert sorted(SweepCheckpoint(str(tmp_path), "s-h-s0").load()) == [
            "c0", "c2"
        ]


class TestSweepLock:
    def lock_at(self, tmp_path):
        from repro.exec import SweepLock
        return SweepLock(str(tmp_path / "sweeps" / "s" / "sweep.lock"))

    def test_acquire_writes_pid_release_removes(self, tmp_path):
        lock = self.lock_at(tmp_path)
        lock.acquire()
        body = json.load(open(lock.path))
        assert body["pid"] == os.getpid()
        lock.release()
        assert not os.path.exists(lock.path)

    def test_own_pid_lock_is_broken(self, tmp_path):
        # A previous in-process owner crashed without releasing (the
        # simulated-crash path): a process cannot race itself.
        first = self.lock_at(tmp_path)
        first.acquire()  # left held deliberately
        second = self.lock_at(tmp_path)
        second.acquire()
        second.release()

    def test_dead_pid_lock_is_broken(self, tmp_path):
        lock = self.lock_at(tmp_path)
        os.makedirs(os.path.dirname(lock.path))
        json.dump({"pid": 2 ** 22 + 4321}, open(lock.path, "w"))
        lock.acquire()
        assert json.load(open(lock.path))["pid"] == os.getpid()
        lock.release()

    def test_torn_lock_body_is_broken(self, tmp_path):
        lock = self.lock_at(tmp_path)
        os.makedirs(os.path.dirname(lock.path))
        open(lock.path, "w").write('{"pi')  # torn by a crash
        lock.acquire()
        lock.release()

    def test_live_foreign_pid_refused(self, tmp_path):
        from repro.errors import SweepLockError
        lock = self.lock_at(tmp_path)
        os.makedirs(os.path.dirname(lock.path))
        json.dump({"pid": 1}, open(lock.path, "w"))  # init is always alive
        with pytest.raises(SweepLockError):
            lock.acquire()
        assert json.load(open(lock.path))["pid"] == 1  # left untouched

    def test_two_resumes_cannot_interleave(self, tmp_path):
        # Executor-level guarantee: a checkpoint whose lock is held by
        # a live foreign process refuses to run rather than interleave
        # journal appends with the other resume.
        from repro.errors import SweepLockError
        from repro.exec import SweepExecutor
        from tests.test_exec_supervisor import make_cells

        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0")
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=1)
        json.dump({"pid": 1}, open(checkpoint.lock.path, "w"))
        cells = make_cells("ok_cell", count=1)
        with pytest.raises(SweepLockError):
            SweepExecutor(jobs=1).run(cells, checkpoint=checkpoint)
        # The journal was never opened, let alone appended to.
        assert not os.path.exists(checkpoint.journal_path)

    def test_lock_released_even_when_run_fails(self, tmp_path):
        from repro.exec import SweepExecutor
        from tests.test_exec_supervisor import make_cells

        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0")
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=1)
        cells = make_cells("ok_cell", count=1)
        SweepExecutor(jobs=1).run(cells, checkpoint=checkpoint)
        assert not os.path.exists(checkpoint.lock.path)
