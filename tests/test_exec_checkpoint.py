"""Crash-safety of sweep checkpoints and the hardened run registry."""

import json
import os

import pytest

from repro.errors import CheckpointError
from repro.exec.cells import CellResult
from repro.exec.checkpoint import SweepCheckpoint, sweep_id
from repro.obs.registry import (
    RunRegistry,
    atomic_write_json,
    quarantine_corrupt,
)


def result_for(cell_id, value=1.0, status="ok"):
    return CellResult(
        cell_id=cell_id, status=status, metrics={"value": value},
        provenance_hash="deadbeefdeadbeef",
    )


class TestSweepCheckpoint:
    def test_journal_and_snapshot_round_trip(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0",
                                     snapshot_every=2)
        checkpoint.initialise(config_hash="h", seed=0,
                              config={"k": 1}, n_cells=3)
        for i in range(3):
            checkpoint.record(result_for(f"c{i}", value=float(i)))
        checkpoint.close()

        loaded = SweepCheckpoint(str(tmp_path), "s-h-s0").load()
        assert sorted(loaded) == ["c0", "c1", "c2"]
        assert loaded["c1"].metrics["value"] == 1.0

    def test_torn_journal_tail_is_dropped(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0")
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=2)
        checkpoint.record(result_for("c0"))
        with open(checkpoint.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"cell_id": "c1", "status": "o')  # crash mid-write
        loaded = SweepCheckpoint(str(tmp_path), "s-h-s0").load()
        assert sorted(loaded) == ["c0"]

    def test_corrupt_snapshot_falls_back_to_journal(self, tmp_path, capsys):
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0",
                                     snapshot_every=1)
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=1)
        checkpoint.record(result_for("c0"))
        with open(checkpoint.snapshot_path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        fresh = SweepCheckpoint(str(tmp_path), "s-h-s0")
        assert sorted(fresh.load()) == ["c0"]
        assert os.path.exists(checkpoint.snapshot_path + ".corrupt")

    def test_resume_under_different_config_refused(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0")
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=1)
        other = SweepCheckpoint(str(tmp_path), "s-h-s0")
        with pytest.raises(CheckpointError):
            other.initialise(config_hash="DIFFERENT", seed=0, config={},
                             n_cells=1)

    def test_later_journal_entry_wins(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), "s-h-s0")
        checkpoint.initialise(config_hash="h", seed=0, config={}, n_cells=1)
        checkpoint.record(result_for("c0", status="quarantined"))
        checkpoint.record(result_for("c0", value=5.0, status="ok"))
        loaded = SweepCheckpoint(str(tmp_path), "s-h-s0").load()
        assert loaded["c0"].status == "ok"
        assert loaded["c0"].metrics["value"] == 5.0

    def test_sweep_id_is_config_and_seed_keyed(self):
        assert sweep_id("sweep", "abc123", 7) == "sweep-abc123-s7"


class TestAtomicWrites:
    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        path = str(tmp_path / "x.json")
        atomic_write_json(path, {"a": 1})
        atomic_write_json(path, {"a": 2})
        assert json.load(open(path)) == {"a": 2}
        assert os.listdir(tmp_path) == ["x.json"]

    def test_quarantine_corrupt_moves_aside(self, tmp_path, capsys):
        path = str(tmp_path / "bad.json")
        open(path, "w").write("{ nope")
        moved = quarantine_corrupt(path)
        assert moved.endswith(".corrupt")
        assert not os.path.exists(path)
        assert "quarantined" in capsys.readouterr().err


class TestRegistryHardening:
    def test_corrupt_record_quarantined_not_fatal(self, tmp_path, capsys):
        registry = RunRegistry(str(tmp_path))
        from repro.obs.registry import RunRecord, build_provenance

        record = RunRecord(
            experiment="fig3", kind="experiment",
            metrics={"m": 1.0},
            provenance=build_provenance(
                experiment="fig3", seed=0, scale=0.3, platforms=["X"]
            ),
        )
        registry.save(record)
        # A truncated record (pre-atomic writer killed mid-write).
        bad = os.path.join(str(tmp_path), "zz-truncated.json")
        open(bad, "w").write('{"schema_version": 1, "experiment": "fi')

        records = registry.records()
        assert [r.experiment for r in records] == ["fig3"]
        assert not os.path.exists(bad)
        assert os.path.exists(bad + ".corrupt")
        assert "quarantined" in capsys.readouterr().err
        # The quarantined file is not rescanned next time.
        assert len(registry.records()) == 1

    def test_save_is_atomic_no_partials_visible(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        from repro.obs.registry import RunRecord, build_provenance

        record = RunRecord(
            experiment="fig3", kind="experiment", metrics={"m": 1.0},
            provenance=build_provenance(
                experiment="fig3", seed=0, scale=0.3, platforms=["X"]
            ),
        )
        path = registry.save(record)
        assert os.path.basename(path) in os.listdir(tmp_path)
        assert not [n for n in os.listdir(tmp_path) if ".tmp." in n]
