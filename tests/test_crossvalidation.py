"""Cross-validation against independent reference implementations.

The workloads must be *functionally* correct, not just behaviourally
plausible — these tests check our graph algorithms against networkx and
our statistical pipeline against scipy.
"""

import networkx as nx
import numpy as np
import pytest
from scipy import linalg as scipy_linalg
from scipy.cluster.vq import kmeans2

from repro.core.kmeans import fit_kmeans
from repro.core.pca import fit_pca
from repro.datagen.graph import GoogleWebGraph
from repro.stacks.base import Meter
from repro.workloads.extra import _bfs
from repro.workloads.ml import _pagerank_iteration


@pytest.fixture(scope="module")
def web_graph():
    generator = GoogleWebGraph(scale=0.001, seed=3)
    return generator.adjacency()


def to_networkx(adjacency) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(adjacency)
    for source, targets in adjacency.items():
        for target in targets:
            graph.add_edge(source, target)
    return graph


class TestGraphAlgorithmsVsNetworkx:
    def test_bfs_distances_match(self, web_graph):
        ours = _bfs(web_graph, 0, Meter())
        reference = nx.single_source_shortest_path_length(
            to_networkx(web_graph), 0
        )
        assert ours == dict(reference)

    def test_pagerank_matches(self, web_graph):
        n = len(web_graph)
        ranks = {node: 1.0 / n for node in web_graph}
        meter = Meter()
        for _ in range(60):
            ranks = _pagerank_iteration(web_graph, ranks, meter)

        # networkx uses the same damping but redistributes dangling mass;
        # compare after normalising both to unit sum.
        reference = nx.pagerank(
            to_networkx(web_graph), alpha=0.85, max_iter=200, tol=1e-12,
        )
        ours_total = sum(ranks.values())
        ours = {node: value / ours_total for node, value in ranks.items()}

        top_ours = [n for n, _ in sorted(ours.items(), key=lambda kv: -kv[1])[:10]]
        top_reference = [
            n for n, _ in sorted(reference.items(), key=lambda kv: -kv[1])[:10]
        ]
        # The top of the ranking (what S-PageRank reports) must agree.
        assert set(top_ours[:5]) == set(top_reference[:5])

    def test_connected_components_count(self):
        from repro.datagen.graph import FacebookSocialGraph

        graph = FacebookSocialGraph(scale=0.05, seed=4)
        adjacency = graph.adjacency()
        undirected = nx.Graph()
        undirected.add_nodes_from(adjacency)
        for source, targets in adjacency.items():
            for target in targets:
                undirected.add_edge(source, target)
        reference = nx.number_connected_components(undirected)

        # Label propagation as used by S-CC.
        labels = {node: node for node in adjacency}
        changed = True
        while changed:
            changed = False
            for node, targets in adjacency.items():
                for target in targets:
                    if labels[target] < labels[node]:
                        labels[node] = labels[target]
                        changed = True
        assert len(set(labels.values())) == reference


class TestStatisticsVsScipy:
    def test_pca_components_match_svd(self):
        rng = np.random.default_rng(11)
        matrix = rng.normal(size=(60, 8))
        ours = fit_pca(matrix, n_components=4)

        centered = matrix - matrix.mean(axis=0)
        _u, s, vt = scipy_linalg.svd(centered, full_matrices=False)
        reference_variance = (s ** 2) / (matrix.shape[0] - 1)

        assert np.allclose(
            ours.explained_variance, reference_variance[:4], rtol=1e-8
        )
        for i in range(4):
            # Eigenvectors match up to sign.
            dot = abs(np.dot(ours.components[i], vt[i]))
            assert dot == pytest.approx(1.0, abs=1e-8)

    def test_kmeans_quality_matches_scipy(self):
        rng = np.random.default_rng(12)
        centers = rng.uniform(-10, 10, size=(4, 5))
        points = np.vstack(
            [c + rng.normal(0, 0.2, size=(25, 5)) for c in centers]
        )
        ours = fit_kmeans(points, k=4, seed=2)
        _centroids, labels = kmeans2(points, 4, seed=2, minit="++")

        def inertia(pts, labels_):
            total = 0.0
            for cluster in range(4):
                members = pts[labels_ == cluster]
                if len(members):
                    total += ((members - members.mean(axis=0)) ** 2).sum()
            return total

        reference = inertia(points, labels)
        # Same ballpark objective: neither implementation should be more
        # than 10% worse than the other on well-separated blobs.
        assert ours.inertia <= 1.1 * reference + 1e-9
