"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access,
so ``pip install -e .`` cannot use PEP 660 editable builds.  This shim
lets ``python setup.py develop`` (and old-style pip editable installs)
work from the pyproject metadata.
"""

from setuptools import setup

setup()
