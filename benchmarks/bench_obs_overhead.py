"""Tracing-overhead guardrail: observed sweeps must stay cheap and exact.

Runs the same fixed-seed Figure 4 regeneration twice — once bare, once
with the full observability stack attached (cross-process tracer +
progress stream + merged Chrome trace) — and records the wall-clock
ratio into the bench trajectory.  The hard assertion is the PR 2
invariant: the observed run's fidelity metrics are bit-identical to
the unobserved run's, byte for byte under ``json.dumps``.
"""

import json
import os
import time

from conftest import run_once

from repro.exec import SweepTracer, merge_sweep_trace
from repro.experiments import ExperimentContext, fig4_cache
from repro.obs import ProgressStream, RunRegistry
from repro.obs.perf import obs_overhead_record
from repro.workloads import MPI_WORKLOADS, REPRESENTATIVE_WORKLOADS

#: Smaller than BENCH_SCALE: this bench runs the experiment twice.
OVERHEAD_SCALE = 0.2


def _fig4_pairs(context):
    definitions = list(REPRESENTATIVE_WORKLOADS) + list(MPI_WORKLOADS)
    return [(d.workload_id, context.xeon) for d in definitions]


def _run_fig4(jobs, tracer=None, stream=None):
    context = ExperimentContext(scale=OVERHEAD_SCALE, seed=0)
    context.prime(
        _fig4_pairs(context), jobs=jobs, tracer=tracer, observer=stream
    )
    return fig4_cache.run(context)


def test_tracing_overhead_and_bit_identity(benchmark, tmp_path):
    untraced_t0 = time.perf_counter()
    untraced = _run_fig4(jobs=2)
    untraced_s = time.perf_counter() - untraced_t0

    # Mutable: filled during the benchmarked call, read at record time.
    extras = {"bench.untraced_s": untraced_s}

    def traced_fig4():
        trace_dir = str(tmp_path / "trace")
        tracer = SweepTracer(trace_dir)
        stream = ProgressStream(
            str(tmp_path / "progress.jsonl"), sweep="bench-overhead"
        )
        t0 = time.perf_counter()
        result = _run_fig4(jobs=2, tracer=tracer, stream=stream)
        traced_s = time.perf_counter() - t0
        stream.close()
        tracer.close()
        merge_sweep_trace(trace_dir, str(tmp_path / "trace.json"))
        extras["bench.traced_s"] = traced_s
        extras["bench.overhead_ratio"] = traced_s / max(1e-9, untraced_s)
        return result

    traced = run_once(benchmark, traced_fig4, extra_timings=extras)

    # Persist the ratio through the schema-versioned bench-record path
    # too (experiment ``bench.obs-overhead``), so the observatory's
    # bench page charts the overhead trajectory alongside the harness
    # targets.
    RunRegistry().save(
        obs_overhead_record(
            untraced_s=untraced_s,
            traced_s=extras["bench.traced_s"],
            scale=OVERHEAD_SCALE,
            seed=0,
        )
    )

    print()
    print(
        f"  untraced {untraced_s:.2f}s  traced {extras['bench.traced_s']:.2f}s"
        f"  ratio {extras['bench.overhead_ratio']:.3f}"
    )

    # Bit-identity: observation must not change one computed byte.
    assert (
        json.dumps(untraced.fidelity_metrics(), sort_keys=True)
        == json.dumps(traced.fidelity_metrics(), sort_keys=True)
    )
    # The merged trace exists and the guardrail itself: tracing a real
    # sweep may not double its cost.
    assert os.path.isfile(tmp_path / "trace.json")
    assert extras["bench.overhead_ratio"] < 2.0
