"""Figure 1: instruction breakdown (big data branch 18.7%, integer 38%)."""

from conftest import run_once

from repro.experiments import fig1_instruction_mix


def test_fig1_instruction_mix(benchmark, ctx):
    result = run_once(benchmark, fig1_instruction_mix.run, ctx)
    print()
    print(result.render())
    assert 0.14 < result.bigdata_branch < 0.24
    assert 0.30 < result.bigdata_integer < 0.46
