"""§3.2: system-behaviour classification of the 17 representatives."""

from conftest import run_once

from repro.experiments import system_behaviors


def test_system_behaviors(benchmark, ctx):
    result = run_once(benchmark, system_behaviors.run, ctx)
    print()
    print(result.render())
    assert result.total == 17
    assert result.matches >= 8
