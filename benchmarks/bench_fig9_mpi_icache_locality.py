"""Figure 9: MPI instruction footprints match PARSEC, far below Hadoop."""

from conftest import run_once

from repro.experiments import fig6to9_locality


def test_fig9_mpi_icache_locality(benchmark, ctx):
    result = run_once(benchmark, fig6to9_locality.run, ctx, trace_refs=25_000)
    print()
    from repro.report.tables import render_series

    print(render_series("KB", result.sizes_kb, result.instruction,
                        title="Figure 9 — instruction miss ratio incl. MPI"))
    mpi = result.instruction["MPI-workloads"]
    hadoop = result.instruction["Hadoop-workloads"]
    parsec = result.instruction["PARSEC-workloads"]
    at_32 = result.sizes_kb.index(32)
    assert mpi[at_32] < 0.5 * hadoop[at_32]
    assert abs(mpi[at_32] - parsec[at_32]) < 0.12
