"""Micro-benchmarks of the simulation substrates.

Not a paper table — throughput numbers for the cache simulator, branch
predictors, trace generators and the WCRT statistical pipeline, so
regressions in the substrate are visible.
"""

import numpy as np

from repro.core.kmeans import fit_kmeans
from repro.core.pca import fit_pca
from repro.uarch.branch import (
    BranchStreamGenerator,
    HybridPredictor,
    simulate_branches,
)
from repro.uarch.cache import CacheConfig, SetAssociativeCache
from repro.uarch.profile import BranchProfile, CodeFootprint, CodeRegion
from repro.uarch.trace import generate_fetch_trace


def test_cache_simulation_throughput(benchmark):
    trace = generate_fetch_trace(
        CodeFootprint(
            [
                CodeRegion("hot", 32 * 1024, weight=0.8),
                CodeRegion("cold", 512 * 1024, weight=0.2),
            ]
        ),
        100_000,
        seed=3,
    ).tolist()

    def run():
        cache = SetAssociativeCache(CacheConfig("L1I", 32 * 1024, 4))
        cache.run(trace)
        return cache.misses

    misses = benchmark(run)
    assert misses > 0


def test_branch_simulation_throughput(benchmark):
    profile = BranchProfile(
        loop_fraction=0.4, pattern_fraction=0.1,
        data_dependent_fraction=0.5, static_sites=1024,
    )
    events = BranchStreamGenerator(profile, seed=3).generate(30_000)

    def run():
        return simulate_branches(events, HybridPredictor()).mispredictions

    mispredictions = benchmark(run)
    assert mispredictions >= 0


def test_trace_generation_throughput(benchmark):
    footprint = CodeFootprint(
        [
            CodeRegion("hot", 32 * 1024, weight=0.8),
            CodeRegion("cold", 1024 * 1024, weight=0.2),
        ]
    )
    trace = benchmark(generate_fetch_trace, footprint, 200_000, 5)
    assert len(trace) == 200_000


def test_wcrt_statistics_throughput(benchmark):
    rng = np.random.default_rng(9)
    matrix = rng.normal(size=(77, 45))

    def run():
        model = fit_pca(matrix, variance_to_keep=0.9)
        projected = model.transform(matrix)
        return fit_kmeans(projected, k=17, seed=1).inertia

    inertia = benchmark(run)
    assert inertia > 0
