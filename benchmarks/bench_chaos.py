"""Chaos soak: invariant-audited fault campaigns on the simulator.

One seeded campaign sweeps randomized fault scenarios across a
workload x stack slice while the invariant auditor checks byte/CPU
conservation, leak-freedom and clock monotonicity from inside the
simulation.  The bench times a bounded soak and asserts every audited
case comes back clean — the robustness contract behind the paper's
fault-injected numbers.
"""

from conftest import run_once

from repro.experiments import chaos_soak


def test_chaos_soak(benchmark, ctx):
    result = run_once(
        benchmark, chaos_soak.run, ctx, seeds=2, workloads=("wordcount",)
    )
    print()
    print(result.render())
    assert result.clean, [
        violation.to_dict()
        for campaign in result.campaigns
        for case in campaign.cases
        for violation in case.violations
    ]
    assert result.n_cases == 2 * 3  # 2 seeds x (1 workload x 3 stacks)
    outcomes = {
        case.outcome for campaign in result.campaigns for case in campaign.cases
    }
    assert "recovered" in outcomes  # the deep stacks rode out their faults
