"""Ablations of the WCRT methodology (design choices of §3).

Not paper tables — studies of the reduction pipeline's knobs:

- how the BIC-selected K compares with the paper's K = 17;
- how sensitive the clustering is to the PCA variance threshold;
- how well a microarchitecture-independent characterization (the
  paper's stated future work) agrees with the PMU-metric clustering.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.core import (
    adjusted_rand_index,
    fit_kmeans,
    fit_pca,
    gaussian_normalize,
    independent_matrix,
    reduce_workloads,
)
from repro.core.kmeans import bic_score
from repro.workloads import ALL_WORKLOADS

#: A representative subset keeps the ablation affordable; the full-77
#: run lives in bench_table2_reduction.py.
POPULATION = ALL_WORKLOADS[:40]


@pytest.fixture(scope="module")
def characterized(ctx):
    names, vectors, profiles = [], [], []
    for definition in POPULATION:
        counters = ctx.counters(definition.workload_id)
        names.append(definition.workload_id)
        vectors.append(counters.metric_vector())
        profiles.append(ctx.result(definition.workload_id).profile)
    return names, np.vstack(vectors), profiles


def test_ablation_k_selection(benchmark, characterized):
    """BIC curve over K: the criterion should not collapse to K = 2."""
    names, matrix, _profiles = characterized
    normalized, _ = gaussian_normalize(matrix)
    projected = fit_pca(normalized, variance_to_keep=0.9).transform(normalized)

    def sweep():
        scores = {}
        for k in range(2, 21, 2):
            model = fit_kmeans(projected, k, seed=1, n_restarts=4)
            scores[k] = bic_score(projected, model)
        return scores

    scores = run_once(benchmark, sweep)
    print()
    for k, score in scores.items():
        print(f"  K={k:2d}  BIC={score:12.1f}")
    best_k = max(scores, key=scores.get)
    print(f"  BIC-preferred K: {best_k} (paper fixes K = 17 on 77 workloads)")
    assert best_k >= 4


def test_ablation_pca_threshold(benchmark, characterized):
    """Cluster assignments are stable across PCA variance thresholds."""
    names, matrix, _profiles = characterized

    def sweep():
        labelings = {}
        for threshold in (0.75, 0.85, 0.90, 0.95):
            result = reduce_workloads(
                names, matrix, k=10, variance_to_keep=threshold, seed=2
            )
            labelings[threshold] = result.labels
        return labelings

    labelings = run_once(benchmark, sweep)
    print()
    baseline = labelings[0.90]
    for threshold, labels in labelings.items():
        ari = adjusted_rand_index(baseline, labels)
        print(f"  variance={threshold:.2f}  ARI vs 0.90 = {ari:.3f}")
        assert ari > 0.3  # materially similar partitions


def test_ablation_independent_metrics(benchmark, characterized):
    """Microarchitecture-independent clustering vs the PMU clustering."""
    names, matrix, profiles = characterized

    def compare():
        dependent = reduce_workloads(names, matrix, k=10, seed=3)
        independent = reduce_workloads(
            names, independent_matrix(profiles), k=10, seed=3
        )
        return dependent, independent

    dependent, independent = run_once(benchmark, compare)
    ari = adjusted_rand_index(dependent.labels, independent.labels)
    print(f"\n  ARI(dependent, independent) = {ari:.3f}")
    print(f"  dependent representatives:   {dependent.representatives[:6]} ...")
    print(f"  independent representatives: {independent.representatives[:6]} ...")
    # The two views should agree far better than chance: the stack and
    # algorithm structure is visible from either side.
    assert ari > 0.25
