"""Figure 2: integer-instruction breakdown (64% / 18% / 18%) and the
data-movement headline (73% -> 92% with branches)."""

from conftest import run_once

from repro.experiments import fig2_integer_breakdown


def test_fig2_integer_breakdown(benchmark, ctx):
    result = run_once(benchmark, fig2_integer_breakdown.run, ctx)
    print()
    print(result.render())
    assert result.avg_int_addr > 0.5
    assert result.avg_with_branches > 0.8
