"""§5.5: software-stack impact (MPI vs Hadoop vs Spark for 6 algorithms).

Paper: M-WordCount IPC 1.8 vs 1.1 (Hadoop) and 0.9 (Spark); L1I MPKI 2
vs 7 and 17 — an order of magnitude across stacks.
"""

from conftest import run_once

from repro.experiments import stack_impact


def test_stack_impact(benchmark, ctx):
    result = run_once(benchmark, stack_impact.run, ctx)
    print()
    print(result.render())
    assert result.mpi_avg["ipc"] > result.others_avg["ipc"]
    assert result.l1i_ratio > 3.0
