"""Figure 7: data-cache miss ratio vs capacity (curves close beyond 64 KB)."""

from conftest import run_once

from repro.experiments import fig6to9_locality


def test_fig7_dcache_locality(benchmark, ctx):
    result = run_once(benchmark, fig6to9_locality.run, ctx, trace_refs=25_000)
    print()
    from repro.report.tables import render_series

    print(render_series("KB", result.sizes_kb, result.data,
                        title="Figure 7 — data cache miss ratio vs size"))
    hadoop = result.data["Hadoop-workloads"]
    parsec = result.data["PARSEC-workloads"]
    at_4mb = result.sizes_kb.index(4096)
    assert abs(hadoop[at_4mb] - parsec[at_4mb]) < 0.05
