"""Figure 6: instruction-cache miss ratio vs capacity (Hadoop vs PARSEC).

Paper: Hadoop's curve sits far above PARSEC's; footprints ~1024 KB vs
~128 KB.
"""

import pytest
from conftest import run_once

from repro.experiments import fig6to9_locality


@pytest.fixture(scope="module")
def locality(ctx):
    return fig6to9_locality.run(ctx, trace_refs=25_000)


def test_fig6_icache_locality(benchmark, ctx):
    result = run_once(benchmark, fig6to9_locality.run, ctx, trace_refs=25_000)
    print()
    print(result.render())
    hadoop = result.instruction["Hadoop-workloads"]
    parsec = result.instruction["PARSEC-workloads"]
    at_32 = result.sizes_kb.index(32)
    assert hadoop[at_32] > parsec[at_32]
    assert result.knees_kb["Hadoop-workloads"] > result.knees_kb["PARSEC-workloads"]
