"""Figure 8: unified miss ratio vs capacity (convergence beyond 1024 KB)."""

from conftest import run_once

from repro.experiments import fig6to9_locality


def test_fig8_unified_locality(benchmark, ctx):
    result = run_once(benchmark, fig6to9_locality.run, ctx, trace_refs=25_000)
    print()
    from repro.report.tables import render_series

    print(render_series("KB", result.sizes_kb, result.unified,
                        title="Figure 8 — unified miss ratio vs size"))
    hadoop = result.unified["Hadoop-workloads"]
    parsec = result.unified["PARSEC-workloads"]
    at_2mb = result.sizes_kb.index(2048)
    assert abs(hadoop[at_2mb] - parsec[at_2mb]) < 0.08
