"""§5.2: the wimpy-vs-brawny core road-map study."""

from conftest import run_once

from repro.experiments import wimpy_core


def test_wimpy_core_study(benchmark, ctx):
    result = run_once(benchmark, wimpy_core.run, ctx)
    print()
    print(result.render())
    # Every workload runs slower per-core on the Atom...
    assert result.min_slowdown > 1.0
    # ...but by widely varying factors: no one-size-fits-all core.
    assert result.spread > 1.3
