"""Fault resilience: Hadoop vs Spark vs MPI under one seeded node crash.

Hadoop and Spark re-execute the dead node's tasks (retries, speculative
duplicates, inflated makespan, wasted work); MPI aborts the whole job —
the operational complement to the §5.5 thin-stack efficiency result.
"""

from conftest import run_once

from repro.experiments import fault_resilience


def test_fault_resilience(benchmark, ctx):
    result = run_once(benchmark, fault_resilience.run, ctx)
    print()
    print(result.render())
    for stack in ("Hadoop", "Spark"):
        entry = result.by_stack(stack)
        assert entry.outcome == "recovered"
        assert entry.faulty.tasks_retried > 0
        assert entry.faulty.makespan_inflation > 1.0
        assert 0.0 < entry.faulty.wasted_work_ratio < 1.0
    assert result.by_stack("MPI").outcome == "job failed"
