"""Figure 4: L1I/L2/L3 MPKI (big data L1I 15, CloudSuite 32, L3 1.2)."""

from conftest import run_once

from repro.experiments import fig4_cache


def test_fig4_cache_mpki(benchmark, ctx):
    result = run_once(benchmark, fig4_cache.run, ctx)
    print()
    print(result.render())
    assert 8 < result.bigdata["l1i_mpki"] < 25
    assert result.bigdata["l3_mpki"] < 3
