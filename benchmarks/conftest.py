"""Shared benchmark fixtures.

Every bench regenerates one of the paper's tables or figures, prints the
rows/series next to the paper's reference numbers, and times the
regeneration via pytest-benchmark (rounds kept minimal: these are
experiment harnesses, not micro-benchmarks).
"""

import pytest

from repro.experiments import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    """One characterization sweep shared by all figure benches."""
    return ExperimentContext(scale=0.4)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
