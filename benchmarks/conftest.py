"""Shared benchmark fixtures.

Every bench regenerates one of the paper's tables or figures, prints the
rows/series next to the paper's reference numbers, and times the
regeneration via pytest-benchmark (rounds kept minimal: these are
experiment harnesses, not micro-benchmarks).

Each bench also appends a ``kind="bench"`` run record to the registry
(``.repro-runs/`` or ``$REPRO_RUNS_DIR``) carrying the experiment's
deterministic fidelity metrics plus the measured wall time — and, when
``$REPRO_BENCH_FILE`` is set, the same records accumulate into that
single JSON file (the committed ``BENCH_*.json`` trajectory baselines
are generated this way).
"""

import json
import os

import pytest

from repro.experiments import ExperimentContext
from repro.obs.registry import RunRecord, RunRegistry, build_provenance

BENCH_SCALE = 0.4


@pytest.fixture(scope="session")
def ctx():
    """One characterization sweep shared by all figure benches."""
    return ExperimentContext(scale=BENCH_SCALE)


def _bench_seconds(benchmark) -> float:
    try:
        return float(benchmark.stats.stats.mean)
    except AttributeError:
        return 0.0


def _record_bench(name: str, benchmark, result, extra_timings=None) -> None:
    metrics = {}
    fidelity = getattr(result, "fidelity_metrics", None)
    if callable(fidelity):
        metrics = fidelity()
    timings = {"bench.seconds": _bench_seconds(benchmark)}
    if extra_timings:
        timings.update(extra_timings)
    record = RunRecord(
        experiment=f"bench.{name}",
        kind="bench",
        metrics=metrics,
        provenance=build_provenance(
            experiment=f"bench.{name}",
            seed=0,
            scale=BENCH_SCALE,
            platforms=["Xeon E5645"],
        ),
        timings=timings,
    )
    RunRegistry().save(record)
    bench_file = os.environ.get("REPRO_BENCH_FILE")
    if bench_file:
        existing = []
        if os.path.exists(bench_file):
            with open(bench_file, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        existing = [e for e in existing if e["experiment"] != record.experiment]
        existing.append(record.to_dict())
        existing.sort(key=lambda e: e["experiment"])
        with open(bench_file, "w", encoding="utf-8") as handle:
            json.dump(existing, handle, indent=2, sort_keys=True)
            handle.write("\n")


def run_once(benchmark, fn, *args, extra_timings=None, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    ``extra_timings`` merges additional quarantined wall-clock entries
    (e.g. the tracing-overhead guardrail's traced/untraced split) into
    the bench record's ``timings``.
    """
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    _record_bench(
        getattr(benchmark, "name", None) or fn.__module__,
        benchmark,
        result,
        extra_timings=extra_timings,
    )
    return result
