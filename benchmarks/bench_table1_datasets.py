"""Table 1: datasets and generation tools."""

from conftest import run_once

from repro.experiments import table1_datasets


def test_table1_datasets(benchmark):
    result = run_once(benchmark, table1_datasets.run)
    print()
    print(result.render())
    assert len(result.rows) == 7
