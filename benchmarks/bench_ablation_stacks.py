"""Ablations of the software-stack models (§5.5 mechanisms).

- the map-side combiner's effect on Hadoop's shuffle volume (why
  WordCount-class jobs survive their all-to-all);
- the shuffle-path classification (streaming vs dispatch) that drives
  the Hadoop-vs-Spark L1I ordering of Figure 4.
"""

import dataclasses

from conftest import run_once

from repro.stacks.base import SPARK_TRAITS
from repro.stacks.hadoop import Hadoop, MapReduceJob
from repro.stacks.spark import Spark
from repro.uarch import XEON_E5645, characterize
from repro.workloads.kernels import WORDCOUNT_KERNEL, _meter_words, wiki_documents


def _wordcount_job(with_combiner: bool) -> MapReduceJob:
    def mapper(record, emit, meter):
        words = record.split()
        _meter_words(record, meter, len(words))
        for word in words:
            emit(word, 1)

    def reducer(key, values, emit, meter):
        meter.ops(int_op=len(values))
        emit(key, sum(values))

    return MapReduceJob(
        name="wc",
        mapper=mapper,
        reducer=reducer,
        combiner=reducer if with_combiner else None,
        kernel=WORDCOUNT_KERNEL,
        state_bytes=4 * 1024 * 1024,
    )


def test_ablation_combiner(benchmark):
    """Combiner on/off: shuffle volume and records drop sharply."""
    docs = wiki_documents(0.4, seed=0)

    def run():
        with_combiner = Hadoop().run(_wordcount_job(True), docs)
        without_combiner = Hadoop().run(_wordcount_job(False), docs)
        return with_combiner.meter, without_combiner.meter

    combined, raw = run_once(benchmark, run)
    print(f"\n  shuffle records with combiner:    {combined.records_shuffled}")
    print(f"  shuffle records without combiner: {raw.records_shuffled}")
    print(f"  shuffle bytes   with combiner:    {combined.bytes_shuffled}")
    print(f"  shuffle bytes   without combiner: {raw.bytes_shuffled}")
    assert combined.records_shuffled < 0.7 * raw.records_shuffled
    assert combined.bytes_shuffled < raw.bytes_shuffled


def test_ablation_shuffle_path(benchmark):
    """Reclassifying Spark's shuffle as streaming erases its L1I
    disadvantage — the dispatch-vs-streaming split is the load-bearing
    mechanism for Figure 4's Hadoop < Spark ordering."""
    docs = wiki_documents(0.4, seed=0)

    def run():
        stock = Spark()
        rdd = stock.parallelize(docs)
        counts = rdd.flat_map(
            lambda doc: [(w, 1) for w in doc.split()],
            lambda doc, meter: _meter_words(doc, meter, doc.count(" ") + 1),
        ).reduce_by_key(lambda a, b: a + b)
        counts.collect()
        stock_result = stock.finish(
            "S-WC-stock", None, WORDCOUNT_KERNEL,
            state_bytes=4 * 1024 * 1024, output_bytes=1,
        )

        streaming_traits = dataclasses.replace(
            SPARK_TRAITS, shuffle_is_streaming=True
        )
        tweaked = Spark(traits=streaming_traits)
        rdd = tweaked.parallelize(docs)
        counts = rdd.flat_map(
            lambda doc: [(w, 1) for w in doc.split()],
            lambda doc, meter: _meter_words(doc, meter, doc.count(" ") + 1),
        ).reduce_by_key(lambda a, b: a + b)
        counts.collect()
        tweaked_result = tweaked.finish(
            "S-WC-streaming-shuffle", None, WORDCOUNT_KERNEL,
            state_bytes=4 * 1024 * 1024, output_bytes=1,
        )
        return (
            characterize(stock_result.profile, XEON_E5645).l1i_mpki,
            characterize(tweaked_result.profile, XEON_E5645).l1i_mpki,
        )

    stock_l1i, streaming_l1i = run_once(benchmark, run)
    print(f"\n  Spark 1.x object shuffle L1I MPKI:   {stock_l1i:.1f}")
    print(f"  hypothetical streaming shuffle L1I:  {streaming_l1i:.1f}")
    assert streaming_l1i < stock_l1i
