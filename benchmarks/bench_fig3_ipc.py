"""Figure 3: IPC of all workloads (big data 1.28, HPCC 1.5, SPECINT 0.9)."""

from conftest import run_once

from repro.experiments import fig3_ipc


def test_fig3_ipc(benchmark, ctx):
    result = run_once(benchmark, fig3_ipc.run, ctx)
    print()
    print(result.render())
    assert result.suite_ipcs["HPCC"] > result.suite_ipcs["SPECINT"]
