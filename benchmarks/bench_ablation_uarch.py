"""Ablations of the architectural implications (§5.1/§5.3 implications).

The paper's implication paragraphs argue for (a) sophisticated branch
prediction, (b) attention to front-end capacity for stack-heavy code.
These benches quantify both on our models:

- BTB capacity sweep on a big data branch stream;
- the loop predictor's contribution to the hybrid's accuracy;
- L1I capacity sweep for a Hadoop workload (the front-end implication).
"""

import pytest
from conftest import run_once

from repro.uarch.branch import (
    BranchStreamGenerator,
    HybridPredictor,
    SimplePredictor,
    simulate_branches,
)
from repro.uarch.cache import CacheConfig, SetAssociativeCache
from repro.uarch.profile import BranchProfile
from repro.uarch.trace import generate_fetch_trace
from repro.workloads.kernels import hadoop_wordcount

BIGDATA_BRANCHES = BranchProfile(
    loop_fraction=0.40,
    pattern_fraction=0.10,
    data_dependent_fraction=0.50,
    taken_prob=0.04,
    loop_trip=24,
    indirect_fraction=0.04,
    indirect_targets=4,
    static_sites=2048,
)


def test_ablation_btb_capacity(benchmark):
    """Misfetch rate vs BTB entries (Table 4: 128 vs 8192)."""
    generator = BranchStreamGenerator(BIGDATA_BRANCHES, seed=5)
    warm = generator.generate(20_000)
    events = generator.generate(20_000)

    def sweep():
        rates = {}
        for entries in (128, 512, 2048, 8192):
            predictor = SimplePredictor(btb_entries=entries)
            simulate_branches(warm, predictor)
            stats = simulate_branches(events, predictor)
            rates[entries] = stats.misfetch_ratio
        return rates

    rates = run_once(benchmark, sweep)
    print()
    for entries, rate in rates.items():
        print(f"  BTB={entries:5d}  misfetch ratio={rate:.4f}")
    assert rates[8192] < rates[128]


def test_ablation_loop_predictor(benchmark):
    """The loop counter's contribution to the hybrid (Table 4)."""
    loopy = BranchProfile(
        loop_fraction=0.70, pattern_fraction=0.10,
        data_dependent_fraction=0.20, taken_prob=0.05,
        loop_trip=24, indirect_fraction=0.005, static_sites=512,
    )
    generator = BranchStreamGenerator(loopy, seed=7)
    warm = generator.generate(20_000)
    events = generator.generate(20_000)

    def compare():
        with_loop = HybridPredictor(loop_entries=1024)
        without_loop = HybridPredictor(loop_entries=1024)
        without_loop.loop.predict = lambda pc: None  # disable component
        results = {}
        for name, predictor in (("with", with_loop), ("without", without_loop)):
            simulate_branches(warm, predictor)
            results[name] = simulate_branches(events, predictor).misprediction_ratio
        return results

    results = run_once(benchmark, compare)
    print(f"\n  hybrid with loop counter:    {results['with']:.4f}")
    print(f"  hybrid without loop counter: {results['without']:.4f}")
    assert results["with"] <= results["without"] + 0.002


@pytest.fixture(scope="module")
def hadoop_code():
    return hadoop_wordcount(scale=0.4).profile.code


def test_ablation_l1i_capacity(benchmark, hadoop_code):
    """Front-end implication: L1I capacity vs miss ratio for Hadoop code."""
    trace = generate_fetch_trace(hadoop_code, 80_000, seed=9)
    warm, measured = trace[:40_000].tolist(), trace[40_000:].tolist()

    def sweep():
        ratios = {}
        for size_kb in (16, 32, 64, 128, 256):
            cache = SetAssociativeCache(
                CacheConfig("L1I", size_kb * 1024, ways=4)
            )
            cache.run(warm)
            cache.reset_stats()
            cache.run(measured)
            ratios[size_kb] = cache.miss_ratio
        return ratios

    ratios = run_once(benchmark, sweep)
    print()
    for size_kb, ratio in ratios.items():
        print(f"  L1I={size_kb:3d}KB  miss ratio={ratio:.4f}")
    # Doubling the paper's 32 KB L1I should cut Hadoop's misses hard —
    # the co-design implication of §5.4.
    assert ratios[64] < 0.6 * ratios[32] + 0.01
