"""Table 2 / §3: the WCRT reduction of 77 workloads to 17 clusters."""

from conftest import run_once

from repro.experiments import table2_reduction


def test_table2_reduction(benchmark, ctx):
    result = run_once(benchmark, table2_reduction.run, ctx)
    print()
    print(result.render())
    assert result.n_clusters == 17
    total = sum(len(m) for m in result.reduction.clusters.values())
    assert total == 77
