"""Table 4 / §5.1: E5645 vs D510 branch misprediction (2.8% vs 7.8%)."""

from conftest import run_once

from repro.experiments import table4_branch


def test_table4_branch_prediction(benchmark, ctx):
    result = run_once(benchmark, table4_branch.run, ctx)
    print()
    print(result.render())
    assert result.d510_avg > result.e5645_avg
