"""Ablation: hardware prefetching on big data data-streams.

The pipeline model credits stride prefetchers with covering most
streaming misses (§ pipeline prefetch coverage); this bench validates
that credit with the explicit prefetcher simulation over a real
workload's data stream.
"""

from conftest import run_once

from repro.uarch.cache import CacheConfig, SetAssociativeCache
from repro.uarch.prefetch import run_with_prefetcher
from repro.uarch.trace import generate_data_trace
from repro.workloads.kernels import spark_sort


def test_ablation_prefetcher_on_sort_stream(benchmark):
    """Sort's shuffle stream is the prefetcher's best case.

    The claim under test is the pipeline model's prefetch coverage *of
    streaming misses*, so the trace isolates the stream region (the
    skewed-state misses are pointer-chasing no prefetcher covers).
    """
    import dataclasses

    profile = spark_sort(scale=0.4).profile
    stream_only = dataclasses.replace(
        profile.data, hot_fraction=0.0, state_fraction=0.0
    )
    trace = generate_data_trace(stream_only, 60_000, seed=21).tolist()

    def sweep():
        results = {}
        for kind in (None, "nextline", "stride"):
            cache = SetAssociativeCache(CacheConfig("L1D", 32 * 1024, ways=8))
            stats = run_with_prefetcher(cache, trace, kind, degree=2)
            results[str(kind)] = stats
        return results

    results = run_once(benchmark, sweep)
    print()
    for kind, stats in results.items():
        print(
            f"  prefetcher={kind:9s} miss ratio={stats.miss_ratio:.4f} "
            f"accuracy={stats.accuracy:.2f}"
        )
    assert results["stride"].miss_ratio < results["None"].miss_ratio
    # The analytic coverage constant in the pipeline model (~0.7 for the
    # OoO platforms) should be in the ballpark of what the explicit
    # simulation achieves on stream-heavy data.
    covered = 1 - results["stride"].miss_ratio / max(
        1e-9, results["None"].miss_ratio
    )
    print(f"  stride coverage of baseline misses: {covered:.2f}")
    assert covered > 0.2
