"""§5.1 implications: wasted FP capacity, speculation waste."""

from conftest import run_once

from repro.experiments import implications


def test_implications(benchmark, ctx):
    result = run_once(benchmark, implications.run, ctx)
    print()
    print(result.render())
    # The paper's point: big data uses a vanishing share of peak FP.
    assert result.bigdata_fp_utilization < 0.05
    # HPC uses far more of the machine's FP capacity than big data.
    suite_gflops = {row[0]: row[1] for row in result.suite_rows}
    assert suite_gflops["HPCC"] > 10 * result.bigdata_gflops
