"""Figure 5: ITLB/DTLB MPKI (big data ITLB 0.05, DTLB 0.9)."""

from conftest import run_once

from repro.experiments import fig5_tlb


def test_fig5_tlb_mpki(benchmark, ctx):
    result = run_once(benchmark, fig5_tlb.run, ctx)
    print()
    print(result.render())
    assert result.bigdata_itlb < 0.5
    assert result.bigdata_dtlb < 4.0
